"""Hand-checked tests for the DPCP-p blocking and interference bounds (Sec. IV).

The fixture system is small enough that every lemma can be evaluated by hand:

* task A (id 0, priority 2): vertices v0 (WCET 4, two requests to the global
  resource 0, L=1), v1 (WCET 3, one request to the local resource 1, L=2),
  v2 (WCET 3); edges v0→v2, v1→v2; T = D = 100.
* task B (id 1, priority 1): vertices v0 (WCET 5, one request to resource 0,
  L=2), v1 (WCET 5); edge v0→v1; T = D = 200.
* clusters: A owns processors {0, 1}, B owns {2, 3}; the global resource 0 is
  hosted on processor 0 (inside A's cluster).
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.dpcp_p.blocking import (
    inter_task_blocking,
    intra_task_blocking,
    request_response_time,
)
from repro.analysis.dpcp_p.context import DpcpPContext
from repro.analysis.dpcp_p.interference import (
    agent_interference,
    intra_task_interference,
    intra_task_interference_en,
    vertex_non_critical_wcet,
)
from repro.analysis.dpcp_p.wcrt import path_wcrt, task_wcrt_en, task_wcrt_ep
from repro.analysis.paths import PathEnumerator
from repro.model.dag import DAG
from repro.model.platform import Cluster, PartitionedSystem, Platform
from repro.model.resources import ResourceUsage
from repro.model.task import DAGTask, TaskSet, Vertex

GLOBAL = 0
LOCAL = 1


def build_system():
    task_a = DAGTask(
        task_id=0,
        vertices=[
            Vertex(0, 4.0, requests={GLOBAL: 2}),
            Vertex(1, 3.0, requests={LOCAL: 1}),
            Vertex(2, 3.0),
        ],
        dag=DAG(3, [(0, 2), (1, 2)]),
        period=100.0,
        resource_usages=[
            ResourceUsage(GLOBAL, 2, 1.0),
            ResourceUsage(LOCAL, 1, 2.0),
        ],
        priority=2,
        name="A",
    )
    task_b = DAGTask(
        task_id=1,
        vertices=[
            Vertex(0, 5.0, requests={GLOBAL: 1}),
            Vertex(1, 5.0),
        ],
        dag=DAG(2, [(0, 1)]),
        period=200.0,
        resource_usages=[ResourceUsage(GLOBAL, 1, 2.0)],
        priority=1,
        name="B",
    )
    taskset = TaskSet([task_a, task_b])
    platform = Platform(6)
    clusters = {0: Cluster(0, [0, 1]), 1: Cluster(1, [2, 3])}
    partition = PartitionedSystem(taskset, platform, clusters, {GLOBAL: 0})
    return taskset, partition


@pytest.fixture
def system():
    return build_system()


@pytest.fixture
def ctx(system):
    taskset, partition = system
    return DpcpPContext(taskset, partition)


# --------------------------------------------------------------------------- #
# Context quantities
# --------------------------------------------------------------------------- #
def test_resource_classification(system):
    taskset, _ = system
    assert taskset.global_resources() == [GLOBAL]
    assert taskset.local_resources() == [LOCAL]
    assert taskset.resource_ceiling(GLOBAL) == 2


def test_eta_uses_deadline_when_response_unknown(ctx, system):
    taskset, _ = system
    task_b = taskset.task(1)
    # eta_B(L) = ceil((L + R_B) / T_B) with R_B = D_B = 200.
    assert ctx.eta(task_b, 0.0) == 1
    assert ctx.eta(task_b, 10.0) == 2
    ctx.response_times[1] = 20.0
    assert ctx.eta(task_b, 10.0) == 1


def test_beta_lower_priority_ceiling_blocking(ctx, system):
    taskset, _ = system
    task_a, task_b = taskset.task(0), taskset.task(1)
    # A can be blocked by B's critical section on the co-located resource 0.
    assert ctx.beta(task_a, GLOBAL) == pytest.approx(2.0)
    # B has no lower-priority task.
    assert ctx.beta(task_b, GLOBAL) == pytest.approx(0.0)


def test_gamma_counts_only_higher_priority_requests(ctx, system):
    taskset, _ = system
    task_a, task_b = taskset.task(0), taskset.task(1)
    assert ctx.gamma(task_a, GLOBAL, 50.0) == pytest.approx(0.0)
    # For B, A is higher priority: eta_A(10) = ceil((10+100)/100) = 2 jobs,
    # each with 2 requests of length 1.
    assert ctx.gamma(task_b, GLOBAL, 10.0) == pytest.approx(4.0)


def test_cluster_and_placement_queries(ctx):
    assert ctx.cluster_size(ctx.taskset.task(0)) == 2
    assert ctx.resources_on_processor(0) == [GLOBAL]
    assert ctx.resources_on_processor(2) == []
    assert ctx.resources_on_cluster(ctx.taskset.task(0)) == [GLOBAL]
    assert ctx.resources_on_cluster(ctx.taskset.task(1)) == []


# --------------------------------------------------------------------------- #
# Lemma 2: request response time
# --------------------------------------------------------------------------- #
def test_request_response_time_task_a(ctx, system):
    taskset, _ = system
    task_a = taskset.task(0)
    # Both requests on the path: W = L + 0 + beta + gamma = 1 + 2 = 3.
    assert request_response_time(ctx, task_a, GLOBAL, {GLOBAL: 2}) == pytest.approx(3.0)
    # One request off the path adds its critical section to the window.
    assert request_response_time(ctx, task_a, GLOBAL, {GLOBAL: 1}) == pytest.approx(4.0)


def test_request_response_time_task_b(ctx, system):
    taskset, _ = system
    task_b = taskset.task(1)
    # W = 2 + gamma(W); gamma counts two jobs of A -> 4; W = 6 is a fixed point.
    assert request_response_time(ctx, task_b, GLOBAL, {GLOBAL: 1}) == pytest.approx(6.0)


def test_request_response_time_divergence_gives_inf(ctx, system):
    taskset, _ = system
    task_b = taskset.task(1)
    # An artificially tiny divergence bound forces the "no bound" outcome.
    result = request_response_time(ctx, task_b, GLOBAL, {GLOBAL: 1}, divergence_bound=1.0)
    assert math.isinf(result)


# --------------------------------------------------------------------------- #
# Lemma 3: inter-task blocking
# --------------------------------------------------------------------------- #
def test_inter_task_blocking_min_of_demand_and_supply(ctx, system):
    taskset, _ = system
    task_a = taskset.task(0)
    # epsilon = 2 requests * (beta 2 + gamma 0) = 4;
    # zeta(50) = eta_B(50) * 1 * 2 = 2 * 2 = 4  -> min = 4.
    assert inter_task_blocking(ctx, task_a, {GLOBAL: 2}, 50.0) == pytest.approx(4.0)
    # With a small window, only one job of B fits: zeta = 2 < epsilon.
    ctx.response_times[1] = 0.0
    assert inter_task_blocking(ctx, task_a, {GLOBAL: 2}, 50.0) == pytest.approx(2.0)


def test_inter_task_blocking_zero_without_path_requests(ctx, system):
    taskset, _ = system
    task_a = taskset.task(0)
    assert inter_task_blocking(ctx, task_a, {}, 50.0) == pytest.approx(0.0)


# --------------------------------------------------------------------------- #
# Lemma 4: intra-task blocking
# --------------------------------------------------------------------------- #
def test_intra_task_blocking_full_path(ctx, system):
    taskset, _ = system
    task_a = taskset.task(0)
    # Path holds every request: nothing can block it from inside the task.
    assert intra_task_blocking(ctx, task_a, {GLOBAL: 2, LOCAL: 1}) == pytest.approx(0.0)


def test_intra_task_blocking_partial_path(ctx, system):
    taskset, _ = system
    task_a = taskset.task(0)
    # Path requests the global resource once; the other global request (off
    # path) can block it on processor 0.  The local resource is not requested
    # by the path, so it contributes nothing.
    assert intra_task_blocking(ctx, task_a, {GLOBAL: 1}) == pytest.approx(1.0)


def test_intra_task_blocking_local_resource(ctx, system):
    taskset, _ = system
    task_a = taskset.task(0)
    # A hypothetical path requesting the local resource but not the global one
    # incurs no local blocking (all local requests are on the path) and no
    # global blocking (sigma = 0).
    assert intra_task_blocking(ctx, task_a, {LOCAL: 1}) == pytest.approx(0.0)


# --------------------------------------------------------------------------- #
# Lemmas 5-6: interference
# --------------------------------------------------------------------------- #
def test_vertex_non_critical_wcet(system):
    taskset, _ = system
    task_a = taskset.task(0)
    assert vertex_non_critical_wcet(task_a, 0) == pytest.approx(2.0)
    assert vertex_non_critical_wcet(task_a, 1) == pytest.approx(1.0)
    assert vertex_non_critical_wcet(task_a, 2) == pytest.approx(3.0)


def test_intra_task_interference_concrete_path(ctx, system):
    taskset, _ = system
    task_a = taskset.task(0)
    profile = task_a.path_profile([0, 2])
    # Off-path vertex 1 contributes its non-critical WCET (1) plus its local
    # critical section (2).
    assert intra_task_interference(ctx, task_a, profile) == pytest.approx(3.0)


def test_intra_task_interference_en_bound_dominates(ctx, system):
    taskset, _ = system
    task_a = taskset.task(0)
    en_bound = intra_task_interference_en(task_a)
    assert en_bound == pytest.approx(task_a.wcet - task_a.critical_path_length)
    for vertices in task_a.dag.iter_complete_paths():
        profile = task_a.path_profile(vertices)
        ep_value = intra_task_interference(ctx, task_a, profile)
        # The EN bound plus the path-length gap dominates the EP value.
        assert ep_value <= en_bound + (task_a.critical_path_length - profile.length) + 1e-9


def test_agent_interference(ctx, system):
    taskset, _ = system
    task_a, task_b = taskset.task(0), taskset.task(1)
    # Resource 0 lives in A's cluster: two jobs of B can execute there.
    assert agent_interference(ctx, task_a, {GLOBAL: 2}, 50.0) == pytest.approx(4.0)
    # With an off-path request of A itself, its agent work is added too.
    assert agent_interference(ctx, task_a, {GLOBAL: 1}, 50.0) == pytest.approx(5.0)
    # B's cluster hosts no global resource.
    assert agent_interference(ctx, task_b, {GLOBAL: 1}, 50.0) == pytest.approx(0.0)


# --------------------------------------------------------------------------- #
# Theorem 1 / Eq. (1)
# --------------------------------------------------------------------------- #
def test_path_wcrt_hand_computed(ctx, system):
    taskset, _ = system
    task_a = taskset.task(0)
    profile = task_a.path_profile([0, 2])
    # r = 7 + B + 0 + (3 + I_A)/2 with B = 4 and I_A = 4 at the fixed point.
    assert path_wcrt(ctx, task_a, profile) == pytest.approx(14.5)


def test_task_wcrt_ep_takes_worst_path(ctx, system):
    taskset, _ = system
    task_a = taskset.task(0)
    enumerator = PathEnumerator()
    wcrt = task_wcrt_ep(ctx, task_a, enumerator)
    per_path = [
        path_wcrt(ctx, task_a, task_a.path_profile(vertices))
        for vertices in task_a.dag.iter_complete_paths()
    ]
    assert wcrt == pytest.approx(max(per_path))


def test_en_bound_not_tighter_than_ep(ctx, system):
    taskset, _ = system
    enumerator = PathEnumerator()
    for task in taskset:
        ep = task_wcrt_ep(ctx, task, enumerator)
        en = task_wcrt_en(ctx, task)
        assert en >= ep - 1e-9


def test_en_bound_not_tighter_than_ep_generated(small_taskset, platform16):
    """EN is never tighter than EP on randomly generated task sets."""
    from repro.analysis.dpcp_p.partition import wfd_assign_resources
    from repro.model.platform import minimal_federated_clusters

    clusters = minimal_federated_clusters(small_taskset, platform16)
    if clusters is None:
        pytest.skip("generated task set does not fit the platform")
    outcome = wfd_assign_resources(small_taskset, clusters)
    assert outcome.feasible
    partition = PartitionedSystem(
        small_taskset, platform16, clusters, outcome.assignment
    )
    ctx = DpcpPContext(small_taskset, partition)
    enumerator = PathEnumerator()
    for task in small_taskset:
        bound = task.deadline * 10
        ep = task_wcrt_ep(ctx, task, enumerator, divergence_bound=bound)
        en = task_wcrt_en(ctx, task, divergence_bound=bound)
        if math.isinf(en):
            continue
        assert en >= ep - 1e-6
