"""Integration tests across the full protocol suite on generated workloads."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    DpcpPEnTest,
    DpcpPEpTest,
    FedFpTest,
    LppTest,
    SpinTest,
    default_protocols,
)
from repro.generation import (
    DagGenerationConfig,
    ResourceGenerationConfig,
    TaskSetGenerationConfig,
    generate_taskset,
)
from repro.model import Platform


def quick_config(access_probability=0.6, request_max=6, cs_range=(15.0, 50.0)):
    return TaskSetGenerationConfig(
        average_utilization=1.5,
        dag=DagGenerationConfig(num_vertices_range=(8, 18), edge_probability=0.15),
        resources=ResourceGenerationConfig(
            num_resources_range=(3, 5),
            access_probability=access_probability,
            request_count_range=(1, request_max),
            cs_length_range=cs_range,
        ),
    )


def test_default_protocols_names_and_order():
    names = [p.name for p in default_protocols()]
    assert names == ["DPCP-p-EP", "DPCP-p-EN", "SPIN", "LPP", "FED-FP"]


def test_results_report_partition_and_task_analyses(small_taskset, platform16):
    for protocol in default_protocols():
        result = protocol.test(small_taskset, platform16)
        assert result.protocol == protocol.name
        if result.schedulable:
            assert result.partition is not None
            assert set(result.task_analyses) == {t.task_id for t in small_taskset}
            for task in small_taskset:
                analysis = result.task_analyses[task.task_id]
                assert analysis.deadline == pytest.approx(task.deadline)
                assert analysis.wcrt <= analysis.deadline + 1e-6
                assert analysis.processors >= task.minimum_processors()


def test_schedulable_result_is_truthy(small_taskset, platform16):
    result = FedFpTest().test(small_taskset, platform16)
    assert bool(result) == result.schedulable
    assert result.wcrt(small_taskset.tasks[0].task_id) > 0
    assert math.isinf(result.wcrt(999))


def test_ep_accepts_whenever_en_accepts():
    """The EP analysis is uniformly at least as accurate as EN (paper Table 2)."""
    platform = Platform(16)
    config = quick_config()
    ep, en = DpcpPEpTest(), DpcpPEnTest()
    en_accepted = 0
    for seed in range(12):
        taskset = generate_taskset(6.0, config, rng=100 + seed)
        if en.test(taskset, platform).schedulable:
            en_accepted += 1
            assert ep.test(taskset, platform).schedulable
    assert en_accepted > 0, "the scenario should not be trivially unschedulable"


def test_fedfp_upper_bounds_all_protocols():
    """FED-FP ignores resources, so it accepts whatever any other protocol accepts."""
    platform = Platform(16)
    config = quick_config(access_probability=0.8)
    protocols = default_protocols()
    fed = FedFpTest()
    for seed in range(8):
        taskset = generate_taskset(7.0, config, rng=300 + seed)
        fed_ok = fed.test(taskset, platform).schedulable
        for protocol in protocols:
            if protocol.name == "FED-FP":
                continue
            if protocol.test(taskset, platform).schedulable:
                assert fed_ok


def test_protocols_agree_without_shared_resources():
    """With no resource usage every protocol reduces to plain federated scheduling."""
    platform = Platform(16)
    config = TaskSetGenerationConfig(
        average_utilization=1.5,
        dag=DagGenerationConfig(num_vertices_range=(8, 15), edge_probability=0.15),
        resources=ResourceGenerationConfig(
            num_resources_range=(2, 3),
            access_probability=0.0,
            request_count_range=(1, 5),
            cs_length_range=(15.0, 50.0),
        ),
    )
    for seed in range(6):
        taskset = generate_taskset(6.0, config, rng=500 + seed)
        verdicts = {p.name: p.test(taskset, platform).schedulable for p in default_protocols()}
        assert len(set(verdicts.values())) == 1, verdicts


def test_heavier_contention_never_helps_dpcp_p():
    """Acceptance under DPCP-p-EP should not improve when the platform shrinks."""
    config = quick_config()
    ep = DpcpPEpTest()
    for seed in range(6):
        taskset = generate_taskset(6.0, config, rng=700 + seed)
        large = ep.test(taskset, Platform(24)).schedulable
        small = ep.test(taskset, Platform(8)).schedulable
        if small:
            assert large, "more processors can only help"
