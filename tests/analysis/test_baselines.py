"""Tests for the baseline analyses: FED-FP, SPIN, and LPP."""

from __future__ import annotations

import math

import pytest

from repro.analysis.fedfp import FedFpTest, federated_wcrt
from repro.analysis.lpp import (
    LppTest,
    higher_priority_request_workload,
    lowest_priority_blocking,
    lpp_wcrt,
    request_waiting_time,
)
from repro.analysis.spin import (
    SpinTest,
    inter_task_spin_delay,
    per_request_spin_delay,
    spin_wcrt,
)
from repro.model.dag import DAG
from repro.model.platform import Platform
from repro.model.resources import ResourceUsage
from repro.model.task import DAGTask, TaskSet, Vertex


def fork_join_task(task_id, priority, vertices, wcet, period, resource=None, count=0, cs=1.0):
    """Independent parallel vertices; optionally the first vertex uses a resource."""
    requests = {0: {resource: count}} if resource is not None and count else {}
    vertex_list = [
        Vertex(i, wcet, requests=dict(requests.get(i, {}))) for i in range(vertices)
    ]
    usages = [ResourceUsage(resource, count, cs)] if resource is not None and count else []
    return DAGTask(
        task_id=task_id,
        vertices=vertex_list,
        dag=DAG(vertices),
        period=period,
        resource_usages=usages,
        priority=priority,
    )


def sharing_taskset(cs=1.0, count=2):
    task0 = fork_join_task(0, 2, vertices=3, wcet=10.0, period=20.0,
                           resource=0, count=count, cs=cs)
    task1 = fork_join_task(1, 1, vertices=3, wcet=10.0, period=40.0,
                           resource=0, count=count, cs=cs)
    return TaskSet([task0, task1])


def independent_taskset():
    task0 = fork_join_task(0, 2, vertices=3, wcet=10.0, period=20.0)
    task1 = fork_join_task(1, 1, vertices=3, wcet=10.0, period=40.0)
    return TaskSet([task0, task1])


# --------------------------------------------------------------------------- #
# FED-FP
# --------------------------------------------------------------------------- #
def test_federated_wcrt_formula():
    task = fork_join_task(0, 1, vertices=3, wcet=10.0, period=20.0)
    # L* = 10, C = 30: with 2 processors -> 10 + 20/2 = 20.
    assert federated_wcrt(task, 2) == pytest.approx(20.0)
    assert federated_wcrt(task, 3) == pytest.approx(10.0 + 20.0 / 3)
    assert math.isinf(federated_wcrt(task, 0))


def test_fedfp_minimal_assignment_is_schedulable():
    taskset = independent_taskset()
    result = FedFpTest().test(taskset, Platform(8))
    assert result.schedulable
    for task in taskset:
        analysis = result.task_analyses[task.task_id]
        assert analysis.wcrt <= task.deadline + 1e-9
        assert analysis.processors == task.minimum_processors()


def test_fedfp_unschedulable_when_platform_too_small():
    taskset = independent_taskset()
    result = FedFpTest().test(taskset, Platform(2))
    assert not result.schedulable


def test_fedfp_ignores_resources():
    with_resources = sharing_taskset(cs=3.0, count=3)
    without = independent_taskset()
    platform = Platform(8)
    assert FedFpTest().test(with_resources, platform).schedulable == \
        FedFpTest().test(without, platform).schedulable


# --------------------------------------------------------------------------- #
# SPIN
# --------------------------------------------------------------------------- #
def test_spin_delay_components():
    taskset = sharing_taskset(cs=2.0, count=3)
    task0, task1 = taskset.task(0), taskset.task(1)
    # One critical section of the other task.
    assert inter_task_spin_delay(taskset, task0, 0) == pytest.approx(2.0)
    # Intra-task spinning: min(m-1, N-1) * L = min(1, 2) * 2 with 2 processors.
    assert per_request_spin_delay(taskset, task0, 0, cluster_size=2) == pytest.approx(4.0)
    assert per_request_spin_delay(taskset, task1, 0, cluster_size=3) == pytest.approx(6.0)


def test_spin_wcrt_reduces_to_federated_without_resources():
    taskset = independent_taskset()
    for task in taskset:
        wcrt = spin_wcrt(taskset, task, cluster_size=2, response_times={})
        assert wcrt == pytest.approx(federated_wcrt(task, 2))


def test_spin_wcrt_increases_with_contention():
    light = sharing_taskset(cs=0.5, count=1)
    heavy = sharing_taskset(cs=3.0, count=3)
    light_wcrt = spin_wcrt(light, light.task(0), 3, {})
    heavy_wcrt = spin_wcrt(heavy, heavy.task(0), 3, {})
    assert heavy_wcrt > light_wcrt
    assert light_wcrt >= federated_wcrt(light.task(0), 3)


def test_spin_schedulability_test_end_to_end():
    platform = Platform(8)
    assert SpinTest().test(sharing_taskset(cs=0.5, count=1), platform).schedulable
    # Long critical sections increase the bound but the test still reports.
    stressed = sharing_taskset(cs=3.0, count=3)
    result = SpinTest().test(stressed, platform)
    assert result.protocol == "SPIN"


# --------------------------------------------------------------------------- #
# LPP
# --------------------------------------------------------------------------- #
def test_lpp_blocking_components():
    taskset = sharing_taskset(cs=2.0, count=3)
    task0, task1 = taskset.task(0), taskset.task(1)
    # Task 0 (high priority) can be blocked by task 1's critical section.
    assert lowest_priority_blocking(taskset, task0, 0) == pytest.approx(2.0)
    assert lowest_priority_blocking(taskset, task1, 0) == pytest.approx(0.0)
    # Higher-priority demand on task 1 within 10 time units: eta_0 = 2 jobs,
    # each 3 requests of 2.
    assert higher_priority_request_workload(taskset, task1, 0, 10.0, {}) == pytest.approx(12.0)
    assert higher_priority_request_workload(taskset, task0, 0, 10.0, {}) == pytest.approx(0.0)


def test_lpp_request_waiting_time_high_priority_task():
    taskset = sharing_taskset(cs=2.0, count=3)
    task0 = taskset.task(0)
    # w = own CS (2) + lower (2) + own concurrent (2*2) + higher (0) = 8.
    assert request_waiting_time(taskset, task0, 0, {}, 100.0) == pytest.approx(8.0)


def test_lpp_wcrt_reduces_to_federated_without_resources():
    taskset = independent_taskset()
    for task in taskset:
        wcrt = lpp_wcrt(taskset, task, cluster_size=2, response_times={})
        assert wcrt == pytest.approx(federated_wcrt(task, 2))


def test_lpp_wcrt_increases_with_contention():
    light = sharing_taskset(cs=0.5, count=1)
    heavy = sharing_taskset(cs=3.0, count=3)
    assert lpp_wcrt(heavy, heavy.task(1), 2, {}) > lpp_wcrt(light, light.task(1), 2, {})


def test_lpp_schedulability_test_end_to_end():
    platform = Platform(8)
    result = LppTest().test(sharing_taskset(cs=0.5, count=1), platform)
    assert result.protocol == "LPP"
    assert result.schedulable


# --------------------------------------------------------------------------- #
# Cross-protocol sanity
# --------------------------------------------------------------------------- #
def test_resource_oblivious_bound_is_never_beaten(small_taskset, platform16):
    """FED-FP is an upper baseline: whenever any resource-aware protocol
    accepts a task set, FED-FP accepts it as well."""
    from repro.analysis import default_protocols

    fed = FedFpTest().test(small_taskset, platform16).schedulable
    for protocol in default_protocols():
        if protocol.name == "FED-FP":
            continue
        if protocol.test(small_taskset, platform16).schedulable:
            assert fed
