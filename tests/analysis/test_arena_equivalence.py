"""Cross-taskset arena equivalence (PR 8).

The arena (:mod:`repro.analysis.engine.arena`) solves many task sets'
fixed points in shared batched waves; its contract is *identical by
construction* verdicts — bit-for-bit equal WCRTs, reasons, and partitions
versus calling each kernel test per task set, and ≤ 1e-9 agreement versus
the straight-line reference oracle.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dpcp_p import ENGINE_REFERENCE, DpcpPEnTest, DpcpPEpTest
from repro.analysis.engine.arena import arena_capable, run_arena
from repro.analysis.lpp import LppTest
from repro.analysis.spin import SpinTest
from repro.generation import (
    DagGenerationConfig,
    GenerationError,
    ResourceGenerationConfig,
    TaskSetGenerationConfig,
    generate_taskset,
)
from repro.model import Platform
from repro.utils.rng import ensure_rng, spawn_rngs

TOLERANCE = 1e-9

CONFIG = TaskSetGenerationConfig(
    average_utilization=1.5,
    dag=DagGenerationConfig(num_vertices_range=(5, 10), edge_probability=0.15),
    resources=ResourceGenerationConfig(
        num_resources_range=(3, 6),
        access_probability=0.8,
        request_count_range=(1, 10),
        cs_length_range=(5.0, 30.0),
    ),
)
PLATFORM = Platform(16)


def kernel_suite():
    """A fresh four-protocol kernel suite (the arena-capable set)."""
    return [SpinTest(), LppTest(), DpcpPEpTest(), DpcpPEnTest()]


def sample_tasksets(seed, count=8, utilization=5.0):
    """Draw up to ``count`` task sets from one seed's spawned streams."""
    tasksets = []
    for rng in spawn_rngs(ensure_rng(seed), count):
        try:
            tasksets.append(generate_taskset(utilization, CONFIG, rng))
        except GenerationError:
            continue
    return tasksets


def assert_verdicts_bit_identical(serial, batched):
    """Arena verdicts must equal the per-taskset kernel's exactly."""
    assert serial.schedulable == batched.schedulable
    assert serial.protocol == batched.protocol
    assert serial.reason == batched.reason
    left = serial.task_analyses or {}
    right = batched.task_analyses or {}
    assert left.keys() == right.keys()
    for task_id in left:
        a, b = left[task_id].wcrt, right[task_id].wcrt
        if math.isinf(a) or math.isinf(b):
            assert math.isinf(a) and math.isinf(b), f"task {task_id}: {a} vs {b}"
        else:
            assert a == b, f"task {task_id}: {a!r} != {b!r}"
        assert left[task_id].processors == right[task_id].processors


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_property_arena_matches_per_taskset_kernel(seed):
    tasksets = sample_tasksets(seed, count=5)
    if not tasksets:
        return
    tests = kernel_suite()
    serial = {
        test.name: [test.test(ts, PLATFORM) for ts in tasksets]
        for test in kernel_suite()
    }
    batched = run_arena(tasksets, PLATFORM, tests)
    assert batched.keys() == serial.keys()
    for name in serial:
        for left, right in zip(serial[name], batched[name]):
            assert_verdicts_bit_identical(left, right)


@pytest.mark.parametrize("seed", [1, 7, 42, 777, 2020])
def test_fixed_seed_arena_matches_per_taskset_kernel(seed):
    tasksets = sample_tasksets(seed)
    assert tasksets, "fixed seed unexpectedly generated nothing"
    tests = kernel_suite()
    serial = {
        test.name: [test.test(ts, PLATFORM) for ts in tasksets]
        for test in kernel_suite()
    }
    for name, column in run_arena(tasksets, PLATFORM, tests).items():
        for left, right in zip(serial[name], column):
            assert_verdicts_bit_identical(left, right)


@pytest.mark.parametrize("seed", [42, 777])
def test_fixed_seed_arena_agrees_with_reference_oracle(seed):
    """Arena WCRTs agree with the straight-line reference within 1e-9."""
    tasksets = sample_tasksets(seed, count=5)
    assert tasksets
    reference_suite = [
        SpinTest(engine=ENGINE_REFERENCE),
        LppTest(engine=ENGINE_REFERENCE),
        DpcpPEpTest(engine=ENGINE_REFERENCE),
        DpcpPEnTest(engine=ENGINE_REFERENCE),
    ]
    reference = {
        test.name: [test.test(ts, PLATFORM) for ts in tasksets]
        for test in reference_suite
    }
    for name, column in run_arena(tasksets, PLATFORM, kernel_suite()).items():
        for oracle, batched in zip(reference[name], column):
            assert oracle.schedulable == batched.schedulable
            left = oracle.task_analyses or {}
            right = batched.task_analyses or {}
            assert left.keys() == right.keys()
            for task_id in left:
                a, b = left[task_id].wcrt, right[task_id].wcrt
                if math.isinf(a) or math.isinf(b):
                    assert math.isinf(a) and math.isinf(b)
                else:
                    assert math.isclose(
                        a, b, rel_tol=TOLERANCE, abs_tol=TOLERANCE
                    ), f"{name} task {task_id}: {a!r} vs {b!r}"


def test_arena_capability_probe():
    """Kernel-engine suite instances are capable; everything else falls back."""
    for test in kernel_suite():
        assert arena_capable(test)
    assert not arena_capable(SpinTest(engine=ENGINE_REFERENCE))
    assert not arena_capable(DpcpPEpTest(engine=ENGINE_REFERENCE))

    class OddTest(SpinTest):
        """A subclass may override test(); the probe must refuse it."""

    assert not arena_capable(OddTest())


def test_run_arena_emits_batching_counters():
    from repro.obs import telemetry

    tasksets = sample_tasksets(42, count=4)
    assert tasksets
    with telemetry.session() as tel:
        run_arena(tasksets, PLATFORM, kernel_suite())
        counters = tel.to_dict()["counters"]
    assert counters["arena.tasksets"] == len(tasksets)
    assert counters["arena.batch_solves"] >= 1
    assert counters["arena.requests"] >= counters["arena.batch_solves"]
