"""Telemetry tests: buckets, sessions, and the merge-associativity property."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import telemetry
from repro.obs.telemetry import (
    ScalarSolveStats,
    Telemetry,
    TimerStats,
    bucket_index,
    bucket_label,
    bucket_label_from_index,
    bucket_sort_key,
)


# --------------------------------------------------------------------------- #
# Buckets
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "value,label",
    [
        (0, "0"),
        (1, "1"),
        (2, "2"),
        (3, "3-4"),
        (4, "3-4"),
        (5, "5-8"),
        (8, "5-8"),
        (9, "9-16"),
        (16, "9-16"),
        (17, "17-32"),
        (10_000, "8193-16384"),
    ],
)
def test_bucket_labels(value, label):
    assert bucket_label(value) == label


@settings(max_examples=300, deadline=None)
@given(st.integers(min_value=0, max_value=2**40))
def test_bucket_index_agrees_with_bucket_label(value):
    assert bucket_label_from_index(bucket_index(value)) == bucket_label(value)


def test_bucket_sort_key_orders_labels_numerically():
    labels = ["17-32", "0", "5-8", "2", "3-4", "1", "9-16"]
    assert sorted(labels, key=bucket_sort_key) == [
        "0", "1", "2", "3-4", "5-8", "9-16", "17-32",
    ]


# --------------------------------------------------------------------------- #
# Timers
# --------------------------------------------------------------------------- #
def test_timer_stats_track_count_total_and_extremes():
    timer = TimerStats()
    for seconds in (0.5, 0.125, 2.0):
        timer.add(seconds)
    assert timer.count == 3
    assert timer.total == 2.625
    assert timer.minimum == 0.125
    assert timer.maximum == 2.0


def test_empty_timer_serialises_min_as_none_and_round_trips():
    empty = TimerStats()
    assert empty.to_dict()["min"] is None
    assert TimerStats.from_dict(empty.to_dict()).to_dict() == empty.to_dict()


def test_span_records_one_observation():
    bundle = Telemetry()
    with bundle.span("phase.test"):
        pass
    timer = bundle.timers["phase.test"]
    assert timer.count == 1
    assert timer.total >= 0.0


# --------------------------------------------------------------------------- #
# The active session
# --------------------------------------------------------------------------- #
def test_sessions_nest_and_restore_the_previous_bundle():
    assert telemetry.active() is None
    with telemetry.session() as outer:
        assert telemetry.active() is outer
        telemetry.count("outer")
        with telemetry.session() as inner:
            assert telemetry.active() is inner
            telemetry.count("inner")
        assert telemetry.active() is outer
    assert telemetry.active() is None
    assert outer.counters == {"outer": 1}
    assert inner.counters == {"inner": 1}


def test_module_guards_are_no_ops_without_a_session():
    telemetry.count("ghost")
    telemetry.observe("ghost", 1.0)
    telemetry.record("ghost", 3)
    with telemetry.session() as bundle:
        pass
    assert not bundle


# --------------------------------------------------------------------------- #
# The solver fast path
# --------------------------------------------------------------------------- #
def test_scalar_solve_stats_fold_matches_the_generic_api():
    fast = Telemetry()
    solves = [("converged", 1), ("converged", 2), ("diverged", 0), ("no_convergence", 7)]
    for outcome, iterations in solves:
        fast.scalar_solves.add(outcome, iterations)

    slow = Telemetry()
    for outcome, iterations in solves:
        slow.count("solver.scalar.calls")
        slow.count(f"solver.scalar.{outcome}")
        slow.count("solver.scalar.iterations", iterations)
        slow.record("solver.iterations", iterations)

    assert fast.to_dict() == slow.to_dict()


def test_scalar_solve_fold_is_idempotent_and_merge_safe():
    a = Telemetry()
    a.scalar_solves.add("converged", 3)
    b = Telemetry()
    b.scalar_solves.add("diverged", 0)
    merged = Telemetry()
    merged.merge(a)
    merged.merge(b)
    snapshot = merged.to_dict()
    assert snapshot == merged.to_dict()  # folding twice changes nothing
    assert snapshot["counters"]["solver.scalar.calls"] == 2
    assert snapshot["counters"]["solver.scalar.converged"] == 1
    assert snapshot["counters"]["solver.scalar.diverged"] == 1
    assert snapshot["histograms"]["solver.iterations"] == {"0": 1, "3-4": 1}
    # The source bundles still carry their own totals after being merged.
    assert a.to_dict()["counters"]["solver.scalar.calls"] == 1


# --------------------------------------------------------------------------- #
# Merge associativity (the contract the parallel executor relies on)
# --------------------------------------------------------------------------- #
_NAMES = st.sampled_from(["solver.calls", "cache.hits", "phase.analysis", "x"])

#: Durations as exact binary fractions so float addition is associative
#: bit-for-bit — the property under test is the *merge*, not float rounding.
_SECONDS = st.integers(min_value=0, max_value=4096).map(lambda n: n / 1024)


@st.composite
def telemetry_bundles(draw):
    """A random Telemetry bundle built through the public recording API."""
    bundle = Telemetry()
    for name, n in draw(
        st.dictionaries(_NAMES, st.integers(min_value=0, max_value=100))
    ).items():
        bundle.count(name, n)
    for name, durations in draw(
        st.dictionaries(_NAMES, st.lists(_SECONDS, max_size=5))
    ).items():
        for seconds in durations:
            bundle.observe(name, seconds)
    for name, values in draw(
        st.dictionaries(
            _NAMES, st.lists(st.integers(min_value=0, max_value=10_000), max_size=5)
        )
    ).items():
        for value in values:
            bundle.record(name, value)
    for outcome, iterations in draw(
        st.lists(
            st.tuples(
                st.sampled_from(["converged", "diverged", "no_convergence"]),
                st.integers(min_value=0, max_value=1000),
            ),
            max_size=4,
        )
    ):
        bundle.scalar_solves.add(outcome, iterations)
    return bundle


def _merged(*bundles):
    out = Telemetry()
    for bundle in bundles:
        out.merge(bundle)
    return out


@settings(max_examples=200, deadline=None)
@given(telemetry_bundles(), telemetry_bundles(), telemetry_bundles())
def test_merge_is_associative(a, b, c):
    left = _merged(_merged(a, b), c)
    right = _merged(a, _merged(b, c))
    assert left.to_dict() == right.to_dict()


@settings(max_examples=100, deadline=None)
@given(telemetry_bundles(), telemetry_bundles())
def test_merge_round_trips_through_to_dict(a, b):
    merged = _merged(a, b)
    assert Telemetry.from_dict(merged.to_dict()).to_dict() == merged.to_dict()


@settings(max_examples=100, deadline=None)
@given(telemetry_bundles())
def test_merging_an_empty_bundle_is_the_identity(a):
    assert _merged(a, Telemetry()).to_dict() == a.to_dict()
