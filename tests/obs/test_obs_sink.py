"""Event-sink tests: envelopes, torn-line tolerance, and seq resumption."""

from __future__ import annotations

import json

from repro.obs.events import CampaignFinished, UnitStarted
from repro.obs.sink import (
    EventSink,
    events_path,
    iter_event_records,
    read_events,
)


def _raw_lines(path):
    with open(path, "rb") as handle:
        return handle.read().split(b"\n")


def test_emit_stamps_a_monotonic_seq_and_a_ts(tmp_path):
    with EventSink(str(tmp_path)) as sink:
        assert sink.next_seq == 0
        for expected in range(3):
            assert sink.emit(UnitStarted(unit_id=f"u{expected}")) == expected
    records = [record for record, _ in iter_event_records(events_path(str(tmp_path)))]
    assert [record["seq"] for record in records] == [0, 1, 2]
    assert all(isinstance(record["ts"], float) for record in records)
    assert [record["unit_id"] for record in records] == ["u0", "u1", "u2"]


def test_seq_resumes_across_reopens(tmp_path):
    with EventSink(str(tmp_path)) as sink:
        sink.emit(UnitStarted(unit_id="a"))
        sink.emit(UnitStarted(unit_id="b"))
    reopened = EventSink(str(tmp_path))
    assert reopened.next_seq == 2
    reopened.emit(CampaignFinished(completed=1, total=1, elapsed_seconds=0.5))
    reopened.close()
    path = events_path(str(tmp_path))
    assert [r["seq"] for r, _ in iter_event_records(path)] == [0, 1, 2]
    events = read_events(path)
    assert [type(event).__name__ for event in events] == [
        "UnitStarted", "UnitStarted", "CampaignFinished",
    ]


def test_reader_never_advances_past_a_torn_trailing_line(tmp_path):
    path = events_path(str(tmp_path))
    with EventSink(str(tmp_path)) as sink:
        sink.emit(UnitStarted(unit_id="whole"))
    with open(path, "ab") as handle:
        handle.write(b'{"type": "unit_started", "unit_id": "torn"')
    records = list(iter_event_records(path))
    assert [record["unit_id"] for record, _ in records] == ["whole"]
    # The offset of the last complete line, not the file end.
    _, offset = records[-1]
    with open(path, "rb") as handle:
        assert offset < len(handle.read())


def test_a_new_sink_heals_the_torn_tail_before_appending(tmp_path):
    path = events_path(str(tmp_path))
    with EventSink(str(tmp_path)) as sink:
        sink.emit(UnitStarted(unit_id="whole"))
    with open(path, "ab") as handle:
        handle.write(b'{"type": "unit_started", "unit_id": "torn"')
    with EventSink(str(tmp_path)) as sink:
        # seq resumes from the last *complete* record.
        assert sink.next_seq == 1
        sink.emit(UnitStarted(unit_id="after"))
    records = [record for record, _ in iter_event_records(path)]
    # The torn line was newline-terminated so the new record did not merge
    # into it; the (now complete but still malformed-as-an-event) line is
    # yielded as a raw record, and the fresh append follows cleanly.
    assert records[-1]["unit_id"] == "after"
    assert records[-1]["seq"] == 1


def test_malformed_complete_lines_are_skipped(tmp_path):
    path = events_path(str(tmp_path))
    with open(path, "wb") as handle:
        handle.write(b"not json at all\n")
        handle.write(b'{"no_type_key": 1}\n')
        handle.write(b"\n")
        handle.write(
            json.dumps({"type": "unit_started", "unit_id": "ok", "seq": 4}).encode()
            + b"\n"
        )
    records = [record for record, _ in iter_event_records(path)]
    assert [record["unit_id"] for record in records] == ["ok"]
    # And a sink opened on this file resumes after the surviving seq.
    assert EventSink(str(tmp_path)).next_seq == 5


def test_start_offset_resumes_an_incremental_tail_read(tmp_path):
    path = events_path(str(tmp_path))
    with EventSink(str(tmp_path)) as sink:
        sink.emit(UnitStarted(unit_id="first"))
        sink.emit(UnitStarted(unit_id="second"))
    first = list(iter_event_records(path))
    _, resume_at = first[0]
    tail = [record for record, _ in iter_event_records(path, start_offset=resume_at)]
    assert [record["unit_id"] for record in tail] == ["second"]


def test_missing_file_yields_nothing(tmp_path):
    assert list(iter_event_records(events_path(str(tmp_path)))) == []
    assert read_events(events_path(str(tmp_path))) == []
