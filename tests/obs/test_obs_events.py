"""Typed-event tests: registry, record round-trips, forward compatibility."""

from __future__ import annotations

import pytest

from repro.obs.events import (
    EVENT_TYPES,
    CacheStats,
    CampaignFinished,
    CampaignStarted,
    JobAdmitted,
    JobFinished,
    PoolCrashed,
    ServiceStarted,
    SimTruncated,
    SolveStats,
    UnitFinished,
    UnitQuarantined,
    UnitRetried,
    UnitStarted,
    UnitTelemetry,
    event_from_record,
)

#: One representative instance per registered event type.
SAMPLES = [
    CampaignStarted(
        config_hash="abc123",
        mode="analyze",
        total_units=8,
        workers=2,
        protocols=("SPIN", "LPP"),
    ),
    UnitStarted(unit_id="s1:p00"),
    UnitFinished(
        unit_id="s1:p00",
        scenario_id="s1",
        point_index=0,
        utilization=8.0,
        elapsed_seconds=0.25,
        evaluated=2,
        generation_failures=1,
    ),
    UnitTelemetry(unit_id="s1:p00", telemetry={"counters": {"x": 1}}),
    SolveStats(unit_id="s1:p00", scalar_calls=5, converged=4, iterations=12),
    SimTruncated(unit_id="s1:p00", truncated=1, simulated=3, events=150000),
    CacheStats(cache="aggregate", hit=False, miss_reason="cold"),
    PoolCrashed(respawn=2, backoff_seconds=1.0, inflight_units=3),
    UnitRetried(unit_id="s1:p00", attempt=2, error_kind="ValueError"),
    UnitQuarantined(
        unit_id="s1:p00",
        error_kind="worker_crash",
        attempts=3,
        error_message="worker process died while executing this unit",
    ),
    ServiceStarted(
        host="127.0.0.1", port=7667, workers=2, data_dir="/tmp/svc"
    ),
    JobAdmitted(job_id="q-abc123", kind="query", coalesced=True, queue_depth=3),
    JobFinished(job_id="q-abc123", state="done", exit_code=0, elapsed_seconds=0.5),
    CampaignFinished(completed=8, total=8, elapsed_seconds=1.5),
]


def test_registry_covers_every_sample_and_is_consistent():
    assert {type(sample) for sample in SAMPLES} == set(EVENT_TYPES.values())
    for name, cls in EVENT_TYPES.items():
        assert cls.TYPE == name


@pytest.mark.parametrize("event", SAMPLES, ids=lambda e: e.TYPE)
def test_record_round_trip(event):
    record = event.to_record()
    assert record["type"] == event.TYPE
    assert event_from_record(record) == event


def test_tuples_serialise_as_lists_and_come_back_as_tuples():
    record = SAMPLES[0].to_record()
    assert record["protocols"] == ["SPIN", "LPP"]
    rebuilt = event_from_record(record)
    assert rebuilt.protocols == ("SPIN", "LPP")


def test_envelope_and_unknown_fields_are_ignored():
    record = UnitStarted(unit_id="u").to_record()
    record.update({"seq": 7, "ts": 123.4, "added_by_newer_writer": True})
    assert event_from_record(record) == UnitStarted(unit_id="u")


def test_unknown_event_type_is_skipped_not_fatal():
    assert event_from_record({"type": "from_the_future", "x": 1}) is None


def test_missing_required_field_raises_type_error():
    with pytest.raises(TypeError):
        event_from_record({"type": "unit_started"})


def test_unit_telemetry_copies_its_payload():
    payload = {"counters": {"a": 1}}
    event = UnitTelemetry(unit_id="u", telemetry=payload)
    payload["counters"] = {}
    assert event.telemetry == {"counters": {"a": 1}}
