"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.generation import (
    DagGenerationConfig,
    ResourceGenerationConfig,
    TaskSetGenerationConfig,
    generate_taskset,
)
from repro.model import Platform
from repro.sim import build_figure1_system


@pytest.fixture
def small_generation_config() -> TaskSetGenerationConfig:
    """A scaled-down generation configuration that keeps tests fast."""
    return TaskSetGenerationConfig(
        average_utilization=1.5,
        dag=DagGenerationConfig(num_vertices_range=(8, 20), edge_probability=0.15),
        resources=ResourceGenerationConfig(
            num_resources_range=(3, 5),
            access_probability=0.6,
            request_count_range=(1, 8),
            cs_length_range=(15.0, 50.0),
        ),
    )


@pytest.fixture
def small_taskset(small_generation_config):
    """A deterministic small task set (total utilization 5)."""
    return generate_taskset(5.0, small_generation_config, rng=12345)


@pytest.fixture
def medium_taskset(small_generation_config):
    """A deterministic mid-size task set (total utilization 8)."""
    return generate_taskset(8.0, small_generation_config, rng=4242)


@pytest.fixture
def platform16() -> Platform:
    """A 16-processor platform."""
    return Platform(16)


@pytest.fixture
def platform8() -> Platform:
    """An 8-processor platform."""
    return Platform(8)


@pytest.fixture
def figure1_system():
    """The partitioned two-task system of the paper's Fig. 1."""
    return build_figure1_system()
