"""Tests for the task / task-set model (repro.model.task)."""

from __future__ import annotations

import pytest

from repro.model.dag import DAG
from repro.model.resources import ResourceUsage
from repro.model.task import DAGTask, TaskError, TaskSet, Vertex, validate_taskset


def make_task(
    task_id=0,
    wcets=(2.0, 3.0, 1.0),
    edges=((0, 1), (1, 2)),
    period=20.0,
    deadline=None,
    requests=None,
    usages=(),
    priority=1,
):
    """Helper building a small task; requests maps vertex -> {rid: count}."""
    requests = requests or {}
    vertices = [
        Vertex(i, wcets[i], requests=dict(requests.get(i, {})))
        for i in range(len(wcets))
    ]
    dag = DAG(len(wcets), edges)
    return DAGTask(
        task_id=task_id,
        vertices=vertices,
        dag=dag,
        period=period,
        deadline=deadline,
        resource_usages=usages,
        priority=priority,
    )


# --------------------------------------------------------------------------- #
# Vertex
# --------------------------------------------------------------------------- #
def test_vertex_rejects_negative_wcet():
    with pytest.raises(TaskError):
        Vertex(0, -1.0)


def test_vertex_rejects_negative_requests():
    with pytest.raises(TaskError):
        Vertex(0, 1.0, requests={0: -1})


def test_vertex_total_requests():
    assert Vertex(0, 1.0, requests={0: 2, 1: 3}).total_requests() == 5


# --------------------------------------------------------------------------- #
# DAGTask construction / validation
# --------------------------------------------------------------------------- #
def test_task_basic_parameters():
    task = make_task()
    assert task.wcet == pytest.approx(6.0)
    assert task.utilization == pytest.approx(0.3)
    assert task.critical_path_length == pytest.approx(6.0)
    assert task.deadline == pytest.approx(20.0)
    assert not task.is_heavy


def test_heavy_task_detection():
    task = make_task(wcets=(10.0, 10.0, 10.0), period=20.0)
    assert task.is_heavy
    assert task.density == pytest.approx(1.5)


def test_task_rejects_vertex_count_mismatch():
    vertices = [Vertex(0, 1.0)]
    dag = DAG(2, [(0, 1)])
    with pytest.raises(TaskError):
        DAGTask(0, vertices, dag, period=10.0)


def test_task_rejects_unordered_vertices():
    vertices = [Vertex(1, 1.0), Vertex(0, 1.0)]
    dag = DAG(2, [(0, 1)])
    with pytest.raises(TaskError):
        DAGTask(0, vertices, dag, period=10.0)


def test_task_rejects_invalid_deadline():
    with pytest.raises(TaskError):
        make_task(deadline=25.0)  # deadline > period
    with pytest.raises(TaskError):
        make_task(deadline=0.0)


def test_task_requires_usage_for_requested_resource():
    with pytest.raises(TaskError):
        make_task(requests={0: {7: 1}})


def test_task_rejects_request_count_mismatch():
    usages = [ResourceUsage(7, max_requests=3, cs_length=0.5)]
    with pytest.raises(TaskError):
        make_task(requests={0: {7: 1}}, usages=usages)


def test_task_rejects_cs_exceeding_vertex_wcet():
    usages = [ResourceUsage(7, max_requests=1, cs_length=10.0)]
    with pytest.raises(TaskError):
        make_task(requests={0: {7: 1}}, usages=usages)


def test_task_level_usage_without_vertex_requests_is_spread():
    usages = [ResourceUsage(7, max_requests=1, cs_length=0.5)]
    task = make_task(usages=usages)
    assert task.vertex_requests(0, 7) == 1
    assert task.request_count(7) == 1


# --------------------------------------------------------------------------- #
# Resource bookkeeping
# --------------------------------------------------------------------------- #
def test_non_critical_wcet_and_resource_queries():
    usages = [ResourceUsage(3, max_requests=2, cs_length=0.5)]
    task = make_task(requests={0: {3: 1}, 1: {3: 1}}, usages=usages)
    assert task.request_count(3) == 2
    assert task.cs_length(3) == pytest.approx(0.5)
    assert task.non_critical_wcet == pytest.approx(6.0 - 1.0)
    assert task.uses_resource(3)
    assert not task.uses_resource(4)
    assert task.used_resources() == [3]
    assert task.vertex_requests(0, 3) == 1
    assert task.vertex_requests(2, 3) == 0


def test_minimum_processors_formula():
    # C=30, L*=10, D=20 -> ceil(20/10) = 2
    task = make_task(wcets=(10.0, 10.0, 10.0), edges=((0, 1),), period=20.0)
    assert task.critical_path_length == pytest.approx(20.0)
    # L* = D makes the task infeasible.
    with pytest.raises(TaskError):
        task.minimum_processors()
    task2 = make_task(wcets=(5.0, 5.0, 20.0), edges=(), period=25.0)
    # L* = 20, C = 30, D = 25 -> ceil(10/5) = 2
    assert task2.minimum_processors() == 2


def test_path_profile_and_critical_path_profile():
    usages = [ResourceUsage(3, max_requests=2, cs_length=0.5)]
    task = make_task(requests={0: {3: 1}, 2: {3: 1}}, usages=usages)
    profile = task.path_profile([0, 1, 2])
    assert profile.length == pytest.approx(6.0)
    assert profile.requests == {3: 2}
    critical = task.critical_path_profile()
    assert critical.length == pytest.approx(task.critical_path_length)


# --------------------------------------------------------------------------- #
# TaskSet
# --------------------------------------------------------------------------- #
def build_taskset():
    usage_a = [ResourceUsage(0, 1, 0.5), ResourceUsage(1, 1, 0.25)]
    usage_b = [ResourceUsage(0, 2, 0.5)]
    task_a = make_task(task_id=0, requests={0: {0: 1}, 1: {1: 1}}, usages=usage_a, priority=2)
    task_b = make_task(task_id=1, requests={0: {0: 2}}, usages=usage_b, period=40.0, priority=1)
    return TaskSet([task_a, task_b])


def test_taskset_global_local_classification():
    taskset = build_taskset()
    # Resource 0 used by both tasks -> global; resource 1 only by task 0 -> local.
    assert taskset.global_resources() == [0]
    assert taskset.local_resources() == [1]
    assert taskset.is_global(0)
    assert not taskset.is_global(1)


def test_taskset_requires_unique_ids():
    task = make_task(task_id=0)
    with pytest.raises(TaskError):
        TaskSet([task, make_task(task_id=0)])


def test_taskset_priority_queries():
    taskset = build_taskset()
    high = taskset.task(0)
    low = taskset.task(1)
    assert taskset.higher_priority_tasks(low) == [high]
    assert taskset.lower_priority_tasks(high) == [low]
    assert [t.task_id for t in taskset.by_priority()] == [0, 1]


def test_taskset_resource_utilization_and_ceiling():
    taskset = build_taskset()
    expected = 1 * 0.5 / 20.0 + 2 * 0.5 / 40.0
    assert taskset.resource_utilization(0) == pytest.approx(expected)
    assert taskset.resource_ceiling(0) == 2
    assert [t.task_id for t in taskset.tasks_using(0)] == [0, 1]


def test_taskset_total_utilization_and_lookup():
    taskset = build_taskset()
    assert taskset.total_utilization == pytest.approx(6.0 / 20.0 + 6.0 / 40.0)
    assert taskset.task(1).task_id == 1
    with pytest.raises(TaskError):
        taskset.task(99)


def test_validate_taskset_reports_no_warnings_for_clean_set():
    assert validate_taskset(build_taskset()) == []


def test_generated_taskset_is_valid(small_taskset):
    assert validate_taskset(small_taskset) == []
    for task in small_taskset:
        # Plausibility constraints from Sec. VII-A.
        assert task.critical_path_length < task.deadline / 2 + 1e-6
        for vertex in task.vertices:
            cs_time = sum(
                count * task.cs_length(rid) for rid, count in vertex.requests.items()
            )
            assert vertex.wcet >= cs_time - 1e-6
