"""Tests for platforms, clusters, and partitioned systems (repro.model.platform)."""

from __future__ import annotations

import pytest

from repro.model.dag import DAG
from repro.model.platform import (
    Cluster,
    PartitionedSystem,
    Platform,
    PlatformError,
    minimal_federated_clusters,
)
from repro.model.resources import ResourceUsage
from repro.model.task import DAGTask, TaskSet, Vertex


def heavy_task(task_id, priority, period=20.0, resource=None, requests=2, cs=0.5):
    """A 4-vertex heavy task (C = 30, L* = 10) optionally using one resource."""
    vertex_requests = {}
    usages = []
    if resource is not None:
        vertex_requests = {0: {resource: requests}}
        usages = [ResourceUsage(resource, requests, cs)]
    vertices = [
        Vertex(0, 10.0, requests=dict(vertex_requests.get(0, {}))),
        Vertex(1, 10.0),
        Vertex(2, 5.0),
        Vertex(3, 5.0),
    ]
    dag = DAG(4, [(0, 3), (1, 3), (2, 3)])
    return DAGTask(
        task_id=task_id,
        vertices=vertices,
        dag=dag,
        period=period,
        resource_usages=usages,
        priority=priority,
    )


@pytest.fixture
def two_task_system():
    task0 = heavy_task(0, priority=2, resource=5)
    task1 = heavy_task(1, priority=1, resource=5)
    taskset = TaskSet([task0, task1])
    platform = Platform(8)
    clusters = {
        0: Cluster(0, [0, 1, 2]),
        1: Cluster(1, [3, 4]),
    }
    partition = PartitionedSystem(taskset, platform, clusters, {5: 3})
    return taskset, platform, partition


def test_platform_requires_two_processors():
    with pytest.raises(PlatformError):
        Platform(1)
    assert Platform(4).processors == (0, 1, 2, 3)


def test_cluster_membership():
    cluster = Cluster(0, [1, 2])
    assert cluster.size == 2
    assert 1 in cluster
    assert 5 not in cluster


def test_partition_rejects_overlapping_clusters(two_task_system):
    taskset, platform, _ = two_task_system
    clusters = {0: Cluster(0, [0, 1]), 1: Cluster(1, [1, 2])}
    with pytest.raises(PlatformError):
        PartitionedSystem(taskset, platform, clusters, {})


def test_partition_rejects_unknown_processor(two_task_system):
    taskset, platform, _ = two_task_system
    clusters = {0: Cluster(0, [0, 99]), 1: Cluster(1, [1])}
    with pytest.raises(PlatformError):
        PartitionedSystem(taskset, platform, clusters, {})


def test_partition_rejects_local_resource_assignment():
    task0 = heavy_task(0, priority=2, resource=5)
    task1 = heavy_task(1, priority=1)  # resource 5 used only by task 0 -> local
    taskset = TaskSet([task0, task1])
    platform = Platform(8)
    clusters = {0: Cluster(0, [0, 1]), 1: Cluster(1, [2, 3])}
    with pytest.raises(PlatformError):
        PartitionedSystem(taskset, platform, clusters, {5: 0})


def test_partition_cluster_queries(two_task_system):
    _, _, partition = two_task_system
    assert partition.processors_of(0) == [0, 1, 2]
    assert partition.num_processors_of(1) == 2
    assert partition.owner_of_processor(4) == 1
    assert partition.owner_of_processor(7) is None
    assert partition.unassigned_processors() == [5, 6, 7]
    assert partition.assigned_processors() == [0, 1, 2, 3, 4]


def test_partition_resource_queries(two_task_system):
    taskset, _, partition = two_task_system
    assert partition.processor_of_resource(5) == 3
    assert partition.resources_on_processor(3) == [5]
    assert partition.resources_on_processor(0) == []
    assert partition.co_located_resources(5) == [5]
    # Resource 5 lives on processor 3, which belongs to task 1's cluster.
    assert partition.resources_on_cluster(1) == [5]
    assert partition.resources_on_cluster(0) == []
    expected_utilization = taskset.resource_utilization(5)
    assert partition.processor_resource_utilization(3) == pytest.approx(
        expected_utilization
    )
    assert partition.cluster_utilization(1) == pytest.approx(
        taskset.task(1).utilization + expected_utilization
    )
    assert partition.cluster_slack(0) == pytest.approx(
        3.0 - taskset.task(0).utilization
    )


def test_partition_copy_is_independent(two_task_system):
    _, _, partition = two_task_system
    clone = partition.copy()
    clone.clusters[0].processors.append(7)
    assert 7 not in partition.clusters[0].processors


def test_unassigned_resource_lookup_raises(two_task_system):
    taskset, platform, _ = two_task_system
    clusters = {0: Cluster(0, [0, 1]), 1: Cluster(1, [2, 3])}
    partition = PartitionedSystem(taskset, platform, clusters, {})
    with pytest.raises(PlatformError):
        partition.processor_of_resource(5)


def test_minimal_federated_clusters_sizes():
    task0 = heavy_task(0, priority=2)
    task1 = heavy_task(1, priority=1)
    taskset = TaskSet([task0, task1])
    clusters = minimal_federated_clusters(taskset, Platform(8))
    assert clusters is not None
    # C=30, L*=15, D=20 -> ceil((30-15)/(20-15)) = 3 processors each.
    assert clusters[0].size == 3
    assert clusters[1].size == 3
    # Higher-priority task gets the first processors.
    assert clusters[0].processors == [0, 1, 2]


def test_minimal_federated_clusters_insufficient_processors():
    tasks = [heavy_task(i, priority=10 - i) for i in range(4)]
    taskset = TaskSet(tasks)
    assert minimal_federated_clusters(taskset, Platform(4)) is None
