"""Tests for the DAG structure (repro.model.dag)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.dag import DAG, DAGError, Edge, PathProfile


# --------------------------------------------------------------------------- #
# Construction and validation
# --------------------------------------------------------------------------- #
def test_single_vertex_dag():
    dag = DAG(1)
    assert dag.num_vertices == 1
    assert dag.num_edges == 0
    assert dag.sources() == [0]
    assert dag.sinks() == [0]


def test_requires_at_least_one_vertex():
    with pytest.raises(DAGError):
        DAG(0)


def test_rejects_self_loop():
    with pytest.raises(DAGError):
        DAG(2, [(0, 0)])
    with pytest.raises(DAGError):
        Edge(1, 1)


def test_rejects_out_of_range_edges():
    with pytest.raises(DAGError):
        DAG(2, [(0, 2)])
    with pytest.raises(DAGError):
        DAG(2, [(-1, 0)])


def test_rejects_cycles():
    with pytest.raises(DAGError):
        DAG(3, [(0, 1), (1, 2), (2, 0)])


def test_duplicate_edges_are_idempotent():
    dag = DAG(2, [(0, 1), (0, 1)])
    assert dag.num_edges == 1


def test_accepts_edge_objects():
    dag = DAG(3, [Edge(0, 1), Edge(1, 2)])
    assert dag.has_edge(0, 1)
    assert dag.has_edge(1, 2)
    assert not dag.has_edge(0, 2)


# --------------------------------------------------------------------------- #
# Structure queries
# --------------------------------------------------------------------------- #
def diamond() -> DAG:
    """0 -> {1, 2} -> 3."""
    return DAG(4, [(0, 1), (0, 2), (1, 3), (2, 3)])


def test_successors_predecessors():
    dag = diamond()
    assert sorted(dag.successors(0)) == [1, 2]
    assert sorted(dag.predecessors(3)) == [1, 2]
    assert dag.predecessors(0) == []
    assert dag.successors(3) == []


def test_sources_and_sinks():
    dag = diamond()
    assert dag.sources() == [0]
    assert dag.sinks() == [3]


def test_topological_order_respects_edges():
    dag = diamond()
    order = dag.topological_order()
    positions = {v: i for i, v in enumerate(order)}
    for src, dst in dag.edges:
        assert positions[src] < positions[dst]


def test_ancestors_descendants():
    dag = diamond()
    assert dag.ancestors(3) == {0, 1, 2}
    assert dag.descendants(0) == {1, 2, 3}
    assert dag.ancestors(0) == set()
    assert dag.descendants(3) == set()


# --------------------------------------------------------------------------- #
# Longest path
# --------------------------------------------------------------------------- #
def test_longest_path_length_diamond():
    dag = diamond()
    weights = [1.0, 5.0, 2.0, 1.0]
    assert dag.longest_path_length(weights) == pytest.approx(7.0)
    assert dag.longest_path(weights) == [0, 1, 3]


def test_longest_path_with_isolated_vertices():
    dag = DAG(3)  # no edges: every vertex is its own complete path
    weights = [1.0, 7.0, 3.0]
    assert dag.longest_path_length(weights) == pytest.approx(7.0)
    assert dag.longest_path(weights) == [1]


def test_longest_path_rejects_bad_weights():
    dag = diamond()
    with pytest.raises(DAGError):
        dag.longest_path_length([1.0, 2.0])
    with pytest.raises(DAGError):
        dag.longest_path_length([1.0, -2.0, 1.0, 1.0])


# --------------------------------------------------------------------------- #
# Complete paths
# --------------------------------------------------------------------------- #
def test_complete_paths_diamond():
    dag = diamond()
    paths = set(dag.iter_complete_paths())
    assert paths == {(0, 1, 3), (0, 2, 3)}
    assert dag.count_complete_paths() == 2


def test_complete_paths_with_limit():
    dag = diamond()
    paths = list(dag.iter_complete_paths(limit=1))
    assert len(paths) == 1


def test_count_complete_paths_with_limit():
    dag = diamond()
    assert dag.count_complete_paths(limit=1) == 1
    assert dag.count_complete_paths(limit=10) == 2


def test_complete_paths_isolated_vertices():
    dag = DAG(3)
    assert set(dag.iter_complete_paths()) == {(0,), (1,), (2,)}
    assert dag.count_complete_paths() == 3


def test_paths_follow_edges():
    dag = DAG(5, [(0, 1), (1, 2), (0, 3), (3, 4)])
    for path in dag.iter_complete_paths():
        for a, b in zip(path, path[1:]):
            assert dag.has_edge(a, b)


# --------------------------------------------------------------------------- #
# PathProfile
# --------------------------------------------------------------------------- #
def test_path_profile_signature_and_request_count():
    profile = PathProfile(vertices=(0, 1), length=3.5, requests={2: 4})
    assert profile.request_count(2) == 4
    assert profile.request_count(9) == 0
    other = PathProfile(vertices=(5, 6), length=3.5, requests={2: 4})
    assert profile.signature() == other.signature()
    different = PathProfile(vertices=(5, 6), length=3.5, requests={2: 5})
    assert profile.signature() != different.signature()


# --------------------------------------------------------------------------- #
# Property-based tests
# --------------------------------------------------------------------------- #
@st.composite
def random_dags(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    edges = []
    for src in range(n):
        for dst in range(src + 1, n):
            if draw(st.booleans()):
                edges.append((src, dst))
    return DAG(n, edges)


@given(random_dags())
@settings(max_examples=60, deadline=None)
def test_property_topological_order_is_permutation(dag):
    order = dag.topological_order()
    assert sorted(order) == list(range(dag.num_vertices))


@given(random_dags(), st.lists(st.floats(min_value=0, max_value=100), min_size=12, max_size=12))
@settings(max_examples=60, deadline=None)
def test_property_longest_path_consistency(dag, raw_weights):
    weights = raw_weights[: dag.num_vertices]
    length = dag.longest_path_length(weights)
    path = dag.longest_path(weights)
    assert sum(weights[v] for v in path) == pytest.approx(length)
    # The longest path never exceeds the total weight and is at least the
    # heaviest single vertex.
    assert length <= sum(weights) + 1e-9
    assert length >= max(weights) - 1e-9


@given(random_dags())
@settings(max_examples=40, deadline=None)
def test_property_complete_paths_cover_sources_and_sinks(dag):
    count = 0
    for path in dag.iter_complete_paths(limit=500):
        count += 1
        assert path[0] in dag.sources()
        assert path[-1] in dag.sinks()
    assert count == dag.count_complete_paths(limit=500)
