"""Tests for the shared-resource model (repro.model.resources)."""

from __future__ import annotations

import pytest

from repro.model.resources import (
    Resource,
    ResourceError,
    ResourceUsage,
    classify_resources,
)


def test_resource_default_name_and_validation():
    resource = Resource(3)
    assert resource.name == "l3"
    named = Resource(4, "net_buffer")
    assert named.name == "net_buffer"
    with pytest.raises(ResourceError):
        Resource(-1)


def test_resource_usage_totals():
    usage = ResourceUsage(resource_id=1, max_requests=4, cs_length=2.5)
    assert usage.total_cs_time == pytest.approx(10.0)
    assert usage.requests_of_vertex(0) == 0


def test_resource_usage_per_vertex_consistency():
    usage = ResourceUsage(1, 3, 1.0, per_vertex_requests={0: 2, 4: 1})
    assert usage.requests_of_vertex(0) == 2
    assert usage.requests_of_vertex(4) == 1
    with pytest.raises(ResourceError):
        ResourceUsage(1, 3, 1.0, per_vertex_requests={0: 1})
    with pytest.raises(ResourceError):
        ResourceUsage(1, 1, 1.0, per_vertex_requests={0: 2, 1: -1})


def test_resource_usage_rejects_negative_parameters():
    with pytest.raises(ResourceError):
        ResourceUsage(1, -1, 1.0)
    with pytest.raises(ResourceError):
        ResourceUsage(1, 1, -1.0)


def test_classify_resources_global_vs_local():
    usages = {
        0: [ResourceUsage(10, 1, 1.0), ResourceUsage(11, 2, 1.0)],
        1: [ResourceUsage(10, 3, 1.0)],
        2: [ResourceUsage(12, 1, 1.0)],
    }
    classification = classify_resources(usages)
    assert classification[10] is True  # shared by tasks 0 and 1
    assert classification[11] is False  # only task 0
    assert classification[12] is False  # only task 2


def test_classify_resources_ignores_zero_request_usages():
    usages = {
        0: [ResourceUsage(10, 0, 1.0)],
        1: [ResourceUsage(10, 1, 1.0)],
    }
    classification = classify_resources(usages)
    assert classification[10] is False
