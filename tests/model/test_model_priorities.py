"""Tests for priority assignment (repro.model.priorities)."""

from __future__ import annotations

import pytest

from repro.model.dag import DAG
from repro.model.priorities import (
    apply_priorities,
    assign_deadline_monotonic,
    assign_rate_monotonic,
    deadline_monotonic,
    rate_monotonic,
)
from repro.model.task import DAGTask, Vertex


def simple_task(task_id, period, deadline=None):
    return DAGTask(
        task_id=task_id,
        vertices=[Vertex(0, 1.0)],
        dag=DAG(1),
        period=period,
        deadline=deadline,
    )


def test_rate_monotonic_orders_by_period():
    tasks = [simple_task(0, 100.0), simple_task(1, 10.0), simple_task(2, 50.0)]
    priorities = rate_monotonic(tasks)
    # Shorter period -> higher priority value.
    assert priorities[1] > priorities[2] > priorities[0]
    assert sorted(priorities.values()) == [1, 2, 3]


def test_deadline_monotonic_orders_by_deadline():
    tasks = [
        simple_task(0, 100.0, deadline=90.0),
        simple_task(1, 100.0, deadline=10.0),
        simple_task(2, 100.0, deadline=50.0),
    ]
    priorities = deadline_monotonic(tasks)
    assert priorities[1] > priorities[2] > priorities[0]


def test_ties_broken_by_task_id_deterministically():
    tasks = [simple_task(0, 10.0), simple_task(1, 10.0)]
    priorities = rate_monotonic(tasks)
    assert priorities[0] > priorities[1]
    # Re-running yields the same assignment.
    assert rate_monotonic(tasks) == priorities


def test_apply_priorities_in_place():
    tasks = [simple_task(0, 100.0), simple_task(1, 10.0)]
    assign_rate_monotonic(tasks)
    assert tasks[1].priority > tasks[0].priority
    assign_deadline_monotonic(tasks)
    assert tasks[1].priority > tasks[0].priority


def test_apply_priorities_requires_every_task():
    tasks = [simple_task(0, 100.0), simple_task(1, 10.0)]
    with pytest.raises(KeyError):
        apply_priorities(tasks, {0: 1})


def test_priorities_are_unique(small_taskset):
    priorities = [t.priority for t in small_taskset]
    assert len(set(priorities)) == len(priorities)
