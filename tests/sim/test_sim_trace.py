"""Trace edge cases: empty traces, overlap detection, horizon-cut jobs."""

from __future__ import annotations

import pytest

from repro.sim.trace import ExecutionInterval, JobRecord, SimulationTrace


def _interval(processor, start, end, resource=None, task_id=0):
    return ExecutionInterval(
        processor=processor, start=start, end=end,
        task_id=task_id, job_id=0, vertex=0, resource=resource,
    )


# --------------------------------------------------------------------------- #
# Empty trace
# --------------------------------------------------------------------------- #
def test_empty_trace_is_well_behaved_everywhere():
    trace = SimulationTrace()
    assert trace.response_times() == {}
    assert trace.worst_response_time(0) is None
    assert trace.deadline_misses() == []
    assert trace.intervals_on(0) == []
    assert trace.check_all() == []
    assert trace.render_gantt() == "(empty trace)"


def test_zero_length_intervals_are_dropped_on_add():
    trace = SimulationTrace()
    trace.add_interval(_interval(0, 1.0, 1.0))
    trace.add_interval(_interval(0, 1.0, 1.0 + 1e-12))
    assert trace.intervals == []


# --------------------------------------------------------------------------- #
# Overlap detection
# --------------------------------------------------------------------------- #
def test_overlapping_intervals_on_one_processor_are_rejected():
    trace = SimulationTrace()
    trace.add_interval(_interval(0, 0.0, 2.0))
    trace.add_interval(_interval(0, 1.5, 3.0))
    problems = trace.check_processor_exclusivity()
    assert len(problems) == 1
    assert "processor 0" in problems[0]
    # The overall check surfaces it too.
    assert trace.check_all() == problems


def test_overlapping_critical_sections_are_rejected_across_processors():
    trace = SimulationTrace()
    trace.add_interval(_interval(0, 0.0, 2.0, resource=3))
    trace.add_interval(_interval(1, 1.0, 3.0, resource=3))
    problems = trace.check_mutual_exclusion()
    assert len(problems) == 1
    assert "resource 3" in problems[0]


def test_touching_intervals_are_not_overlaps():
    trace = SimulationTrace()
    trace.add_interval(_interval(0, 0.0, 2.0, resource=3))
    trace.add_interval(_interval(0, 2.0, 4.0, resource=3))
    assert trace.check_processor_exclusivity() == []
    assert trace.check_mutual_exclusion() == []


# --------------------------------------------------------------------------- #
# Jobs cut by the horizon
# --------------------------------------------------------------------------- #
def test_unfinished_job_reports_no_response_time_or_deadline_verdict():
    cut = JobRecord(task_id=0, job_id=0, release_time=10.0, absolute_deadline=20.0)
    assert cut.finish_time is None
    assert cut.response_time is None
    assert cut.deadline_met is None


def test_horizon_cut_jobs_are_excluded_from_response_statistics():
    trace = SimulationTrace()
    finished = JobRecord(task_id=0, job_id=0, release_time=0.0,
                         absolute_deadline=10.0, finish_time=6.0)
    cut = JobRecord(task_id=0, job_id=1, release_time=8.0, absolute_deadline=18.0)
    late = JobRecord(task_id=1, job_id=0, release_time=0.0,
                     absolute_deadline=5.0, finish_time=7.0)
    for record in (finished, cut, late):
        trace.add_job(record)
    assert trace.response_times() == {0: [6.0], 1: [7.0]}
    assert trace.worst_response_time(0) == pytest.approx(6.0)
    # Only *finished* jobs can miss a deadline; the cut job is not a miss.
    assert trace.deadline_misses() == [late]


def test_worst_response_time_is_none_when_every_job_was_cut():
    trace = SimulationTrace()
    trace.add_job(JobRecord(task_id=0, job_id=0, release_time=0.0,
                            absolute_deadline=10.0))
    assert trace.worst_response_time(0) is None
