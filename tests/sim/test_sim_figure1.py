"""The simulator reproduces the protocol behaviours of the paper's Fig. 1."""

from __future__ import annotations

import pytest

from repro.sim import DpcpPSimulator, build_figure1_system
from repro.sim.paper_example import RESOURCE_GLOBAL, RESOURCE_LOCAL


@pytest.fixture
def figure1_trace(figure1_system):
    partition, behaviors = figure1_system
    simulator = DpcpPSimulator(partition, behaviors)
    simulator.release_job(0, 0.0)  # tau_i
    simulator.release_job(1, 0.0)  # tau_j
    return simulator.run()


def test_tasks_and_resources_are_set_up_as_in_the_paper(figure1_system):
    partition, _ = figure1_system
    taskset = partition.taskset
    task_i, task_j = taskset.task(0), taskset.task(1)
    assert task_i.critical_path_length == pytest.approx(10.0)  # (v1, v5, v7, v8)
    assert task_j.critical_path_length == pytest.approx(6.0)
    assert taskset.is_global(RESOURCE_GLOBAL)
    assert not taskset.is_global(RESOURCE_LOCAL)
    assert partition.processor_of_resource(RESOURCE_GLOBAL) == 1
    assert partition.num_processors_of(0) == 2
    assert partition.num_processors_of(1) == 2


def test_global_requests_follow_the_narrative(figure1_trace):
    """R_j,1 holds l1 over [1, 4]; R_i,1 is issued at 2, granted at 4, done at 7."""
    requests = {r.task_id: r for r in figure1_trace.requests}
    request_j = requests[1]
    request_i = requests[0]
    assert request_j.issue_time == pytest.approx(1.0)
    assert request_j.grant_time == pytest.approx(1.0)
    assert request_j.finish_time == pytest.approx(4.0)
    assert request_i.issue_time == pytest.approx(2.0)
    assert request_i.grant_time == pytest.approx(4.0)  # waits in SQ^G_2
    assert request_i.finish_time == pytest.approx(7.0)


def test_agents_execute_on_the_resource_home_processor(figure1_trace):
    agent_intervals = [i for i in figure1_trace.intervals if i.is_agent]
    assert agent_intervals, "global requests must be executed by agents"
    assert all(i.processor == 1 for i in agent_intervals)
    assert all(i.resource == RESOURCE_GLOBAL for i in agent_intervals)


def test_local_resource_serialises_vi3_and_vi4(figure1_trace):
    local = sorted(
        (i for i in figure1_trace.intervals if i.resource == RESOURCE_LOCAL),
        key=lambda i: i.start,
    )
    assert len(local) == 2
    first, second = local
    # v_i,3 holds l2 during [2, 4]; v_i,4 only afterwards.
    assert first.start == pytest.approx(2.0)
    assert first.end == pytest.approx(4.0)
    assert second.start == pytest.approx(4.0)
    assert second.end == pytest.approx(6.0)
    # Local requests execute inside tau_i's own cluster.
    assert {first.processor, second.processor} <= {2, 3}


def test_schedule_is_valid_and_meets_deadlines(figure1_trace):
    assert figure1_trace.check_all() == []
    assert figure1_trace.deadline_misses() == []
    response_i = figure1_trace.worst_response_time(0)
    response_j = figure1_trace.worst_response_time(1)
    assert response_i == pytest.approx(11.0)
    assert response_j == pytest.approx(12.0)


def test_gantt_rendering_mentions_agents(figure1_trace):
    art = figure1_trace.render_gantt(time_step=1.0)
    assert "A" in art
    assert "P1" in art
