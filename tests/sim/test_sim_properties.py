"""Randomised simulator validation: Lemma 1 and analysis soundness.

These tests generate random workloads, simulate them under DPCP-p, and check

* the protocol invariants (Lemma 1, mutual exclusion, processor exclusivity),
* that observed response times never exceed the analytical WCRT bounds of the
  EP analysis (for task sets the analysis deems schedulable).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import DpcpPEpTest
from repro.generation import (
    DagGenerationConfig,
    GenerationError,
    ResourceGenerationConfig,
    TaskSetGenerationConfig,
    generate_taskset,
)
from repro.model import Platform
from repro.sim import DpcpPSimulator


def tiny_config(access_probability=0.8):
    return TaskSetGenerationConfig(
        average_utilization=1.5,
        dag=DagGenerationConfig(num_vertices_range=(5, 10), edge_probability=0.2),
        resources=ResourceGenerationConfig(
            num_resources_range=(2, 3),
            access_probability=access_probability,
            request_count_range=(1, 4),
            cs_length_range=(20.0, 60.0),
        ),
    )


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_property_protocol_invariants_hold(seed):
    """Simulated schedules satisfy Lemma 1 and mutual exclusion."""
    config = tiny_config()
    try:
        taskset = generate_taskset(4.0, config, rng=seed)
    except GenerationError:
        return
    platform = Platform(16)
    result = DpcpPEpTest().test(taskset, platform)
    if not result.schedulable or result.partition is None:
        return
    simulator = DpcpPSimulator(result.partition)
    horizon = 2 * max(task.period for task in taskset)
    simulator.release_periodic_jobs(horizon)
    trace = simulator.run()
    assert trace.check_lemma1() == []
    assert trace.check_mutual_exclusion() == []
    assert trace.check_processor_exclusivity() == []


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_property_simulation_within_analysis_bound(seed):
    """Observed response times never exceed the analytical WCRT bounds."""
    config = tiny_config(access_probability=0.6)
    try:
        taskset = generate_taskset(4.0, config, rng=seed)
    except GenerationError:
        return
    platform = Platform(16)
    result = DpcpPEpTest().test(taskset, platform)
    if not result.schedulable or result.partition is None:
        return
    simulator = DpcpPSimulator(result.partition)
    horizon = 3 * max(task.period for task in taskset)
    simulator.release_periodic_jobs(horizon)
    trace = simulator.run()
    assert trace.deadline_misses() == []
    for task in taskset:
        observed = trace.worst_response_time(task.task_id)
        if observed is None:
            continue
        bound = result.task_analyses[task.task_id].wcrt
        assert observed <= bound + 1e-6


def test_fixed_seed_regression_invariants():
    """A deterministic end-to-end run of analysis + simulation."""
    config = tiny_config()
    taskset = generate_taskset(4.5, config, rng=2020)
    platform = Platform(16)
    result = DpcpPEpTest().test(taskset, platform)
    if not result.schedulable:
        pytest.skip("seed produced an unschedulable set; invariants not applicable")
    simulator = DpcpPSimulator(result.partition)
    simulator.release_periodic_jobs(2 * max(t.period for t in taskset))
    trace = simulator.run()
    assert trace.check_all() == []
    assert trace.deadline_misses() == []
