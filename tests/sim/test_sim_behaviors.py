"""Tests for execution behaviours (repro.sim.behaviors)."""

from __future__ import annotations

import pytest

from repro.model.dag import DAG
from repro.model.resources import ResourceUsage
from repro.model.task import DAGTask, Vertex
from repro.sim.behaviors import (
    BehaviorError,
    Segment,
    VertexBehavior,
    behaviors_from_task,
    validate_behaviors,
)


def make_task():
    return DAGTask(
        task_id=0,
        vertices=[
            Vertex(0, 4.0, requests={0: 2}),
            Vertex(1, 3.0),
        ],
        dag=DAG(2, [(0, 1)]),
        period=50.0,
        resource_usages=[ResourceUsage(0, 2, 1.0)],
    )


def test_segment_validation_and_flags():
    assert not Segment(1.0).is_critical
    assert Segment(1.0, resource=3).is_critical
    with pytest.raises(BehaviorError):
        Segment(-1.0)


def test_vertex_behavior_totals_and_counts():
    behavior = VertexBehavior(0, [Segment(1.0), Segment(0.5, 2), Segment(0.5, 2)])
    assert behavior.total_duration == pytest.approx(2.0)
    assert behavior.request_counts() == {2: 2}


def test_behaviors_from_task_match_wcets_and_requests():
    task = make_task()
    behaviors = behaviors_from_task(task)
    for vertex in task.vertices:
        behavior = behaviors[vertex.index]
        assert behavior.total_duration == pytest.approx(vertex.wcet)
        for rid, count in vertex.requests.items():
            assert behavior.request_counts().get(rid, 0) == count
    # Critical sections of vertex 0: two segments of length 1.
    critical = [s for s in behaviors[0].segments if s.is_critical]
    assert len(critical) == 2
    assert all(s.duration == pytest.approx(1.0) for s in critical)


def test_validate_behaviors_detects_mismatches():
    task = make_task()
    behaviors = behaviors_from_task(task)
    # Wrong duration.
    broken = dict(behaviors)
    broken[1] = VertexBehavior(1, [Segment(1.0)])
    with pytest.raises(BehaviorError):
        validate_behaviors(task, broken)
    # Missing request.
    broken = dict(behaviors)
    broken[0] = VertexBehavior(0, [Segment(4.0)])
    with pytest.raises(BehaviorError):
        validate_behaviors(task, broken)
    # Missing vertex.
    with pytest.raises(BehaviorError):
        validate_behaviors(task, {0: behaviors[0]})


def test_behaviors_for_generated_tasks(small_taskset):
    for task in small_taskset:
        behaviors = behaviors_from_task(task)
        validate_behaviors(task, behaviors)
