"""Protocol behaviors (repro.sim.protocols): SPIN/LPP rules and soundness.

Three layers of evidence that the protocol-pluggable simulator is faithful:

* handcrafted scenarios with known grant orders — SPIN's task-fair FIFO
  serves waiters in arrival order regardless of priority, LPP serves the
  highest-priority waiter first, and both start every granted critical
  section immediately (spin occupancy / boosted placement);
* direct unit tests of the SPIN spin-occupancy invariant, both the online
  :class:`InvariantMonitor` counter and the trace-level
  ``check_spin_exclusivity`` sweep, on synthetic interval streams;
* a randomised cross-protocol soundness suite: for every simulatable
  baseline (DPCP-p-EP, DPCP-p-EN, SPIN, LPP), task sets the analysis
  accepts never miss a deadline in simulation and never exceed their
  analytical WCRT bound.

``check_lemma1`` is deliberately absent from the SPIN assertions: FIFO
spin locks serve requests in arrival order, so a high-priority request can
legitimately wait behind several lower-priority holders — Lemma 1 is a
DPCP-p property, not a SPIN one.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import DpcpPEnTest, DpcpPEpTest, LppTest, SpinTest
from repro.generation import (
    DagGenerationConfig,
    GenerationError,
    ResourceGenerationConfig,
    TaskSetGenerationConfig,
    generate_taskset,
)
from repro.model.dag import DAG
from repro.model.platform import Cluster, PartitionedSystem, Platform
from repro.model.resources import ResourceUsage
from repro.model.task import DAGTask, TaskSet, Vertex
from repro.sim import (
    DpcpPBehavior,
    LppBehavior,
    RuntimeSimulator,
    SimulationError,
    SpinBehavior,
    behavior_for,
)
from repro.sim.trace import ExecutionInterval, SimulationTrace
from repro.sim.validation import InvariantMonitor

CS_LENGTH = 2.0


def tiny_config(access_probability=0.6):
    """Small task sets with real contention (mirrors test_sim_properties)."""
    return TaskSetGenerationConfig(
        average_utilization=1.5,
        dag=DagGenerationConfig(num_vertices_range=(5, 10), edge_probability=0.2),
        resources=ResourceGenerationConfig(
            num_resources_range=(2, 3),
            access_probability=access_probability,
            request_count_range=(1, 4),
            cs_length_range=(20.0, 60.0),
        ),
    )


def three_task_contended_system():
    """Three single-chain tasks on separate clusters sharing one resource.

    Identical task shapes, so the critical-section issue offset within the
    first vertex is the same for all three — staggering the *release* times
    staggers the lock requests by exactly the same amounts.
    """
    tasks = []
    for task_id, priority in ((0, 3), (1, 2), (2, 1)):
        tasks.append(
            DAGTask(
                task_id,
                [Vertex(0, 3.0, requests={7: 1}), Vertex(1, 1.0)],
                DAG(2, [(0, 1)]),
                period=50.0,
                resource_usages=[ResourceUsage(7, 1, CS_LENGTH)],
                priority=priority,
            )
        )
    taskset = TaskSet(tasks)
    platform = Platform(4)
    clusters = {0: Cluster(0, [0]), 1: Cluster(1, [1]), 2: Cluster(2, [2])}
    return PartitionedSystem(taskset, platform, clusters, {7: 3})


def run_staggered(protocol):
    """Release task 2 first, then task 1, then task 0; simulate to drain."""
    partition = three_task_contended_system()
    simulator = RuntimeSimulator(partition, protocol=protocol)
    simulator.release_job(2, 0.0)
    simulator.release_job(1, 0.4)
    simulator.release_job(0, 0.8)
    return simulator.run()


# --------------------------------------------------------------------------- #
# Behavior registry
# --------------------------------------------------------------------------- #
def test_behavior_for_maps_every_simulatable_protocol():
    assert isinstance(behavior_for("DPCP-p"), DpcpPBehavior)
    assert isinstance(behavior_for("DPCP-p-EP"), DpcpPBehavior)
    assert isinstance(behavior_for("DPCP-p-EN"), DpcpPBehavior)
    assert isinstance(behavior_for("SPIN"), SpinBehavior)
    assert isinstance(behavior_for("LPP"), LppBehavior)


def test_behavior_for_rejects_protocols_without_runtime_rules():
    with pytest.raises(ValueError, match="FED-FP"):
        behavior_for("FED-FP")
    with pytest.raises(ValueError, match="SPIN"):
        # The error names the simulatable suite.
        behavior_for("no-such-protocol")


def test_behavior_attaches_to_exactly_one_simulator():
    partition = three_task_contended_system()
    behavior = SpinBehavior()
    RuntimeSimulator(partition, protocol=behavior)
    with pytest.raises(SimulationError):
        RuntimeSimulator(partition, protocol=behavior)


def test_spin_and_lpp_do_not_execute_agents():
    for behavior in (SpinBehavior(), LppBehavior()):
        with pytest.raises(SimulationError):
            behavior.agent_finished(object())


# --------------------------------------------------------------------------- #
# SPIN: task-fair FIFO, spin occupancy
# --------------------------------------------------------------------------- #
def test_spin_serves_waiters_in_fifo_order_not_priority_order():
    trace = run_staggered(SpinBehavior())
    ordered = sorted(trace.requests, key=lambda r: r.grant_time)
    # Arrival order (2, then 1, then 0) wins even though task 0 has the
    # highest priority — a priority queue would grant 0 before 1.
    assert [r.task_id for r in ordered] == [2, 1, 0]
    assert trace.check_mutual_exclusion() == []
    assert trace.check_processor_exclusivity() == []
    assert trace.check_spin_exclusivity() == []


def test_spin_busy_wait_occupies_the_processor():
    trace = run_staggered(SpinBehavior())
    spins = [i for i in trace.intervals if i.is_spin]
    # Tasks 1 and 0 both arrive while the lock is held, so both spin —
    # on their own processors, against no resource.
    assert {i.task_id for i in spins} == {0, 1}
    assert all(i.resource is None for i in spins)
    assert all(i.processor == i.task_id for i in spins)
    # SPIN runs critical sections inline on the requesting vertex's
    # processor: no agents anywhere.
    assert not any(i.is_agent for i in trace.intervals)


def test_spin_grants_start_the_critical_section_immediately():
    trace = run_staggered(SpinBehavior())
    for request in trace.requests:
        # The spinner already occupies its processor, so the critical
        # section runs back-to-back with the grant.
        assert request.finish_time - request.grant_time == pytest.approx(CS_LENGTH)


# --------------------------------------------------------------------------- #
# LPP: priority-ordered grants, boosted placement
# --------------------------------------------------------------------------- #
def test_lpp_serves_the_highest_priority_waiter_first():
    trace = run_staggered(LppBehavior())
    ordered = sorted(trace.requests, key=lambda r: r.grant_time)
    # Task 2 holds the lock (it asked while the resource was free); tasks 1
    # and 0 queue behind it.  LPP grants by priority: 0 before 1, even
    # though 1 arrived first.
    assert [r.task_id for r in ordered] == [2, 0, 1]
    assert trace.check_mutual_exclusion() == []
    assert trace.check_processor_exclusivity() == []
    # Single shared resource, priority-ordered grants: Lemma 1 holds.
    assert trace.check_lemma1() == []


def test_lpp_suspends_waiters_instead_of_spinning():
    trace = run_staggered(LppBehavior())
    assert not any(i.is_spin for i in trace.intervals)
    assert not any(i.is_agent for i in trace.intervals)


def test_lpp_boosted_grants_start_the_critical_section_immediately():
    trace = run_staggered(LppBehavior())
    for request in trace.requests:
        # Boosted placement: a granted waiter gets a processor at the grant
        # instant, so no processor-wait ever stretches the hold time.
        assert request.finish_time - request.grant_time == pytest.approx(CS_LENGTH)


# --------------------------------------------------------------------------- #
# Spin-occupancy invariant: monitor and trace check on synthetic streams
# --------------------------------------------------------------------------- #
def _interval(processor, start, end, *, is_spin=False, task_id=0, resource=None):
    return ExecutionInterval(
        processor=processor, start=start, end=end,
        task_id=task_id, job_id=0, vertex=0,
        resource=resource, is_spin=is_spin,
    )


def test_monitor_flags_execution_overlapping_an_earlier_spin():
    monitor = InvariantMonitor()
    monitor(_interval(0, 0.0, 5.0, is_spin=True))
    monitor(_interval(0, 3.0, 6.0))
    assert monitor.spin_exclusivity_violations == 1
    # The plain processor-exclusivity counter fires too; both feed the total.
    assert monitor.processor_overlaps == 1
    assert monitor.violations == 2


def test_monitor_flags_a_spin_overlapping_earlier_execution():
    monitor = InvariantMonitor()
    monitor(_interval(0, 0.0, 5.0))
    monitor(_interval(0, 3.0, 6.0, is_spin=True))
    assert monitor.spin_exclusivity_violations == 1


def test_monitor_accepts_disjoint_and_cross_processor_intervals():
    monitor = InvariantMonitor()
    monitor(_interval(0, 0.0, 5.0, is_spin=True))
    monitor(_interval(0, 5.0, 8.0))          # touching is not overlapping
    monitor(_interval(1, 2.0, 4.0))          # other processor
    monitor(_interval(1, 6.0, 9.0, is_spin=True))
    assert monitor.spin_exclusivity_violations == 0
    assert monitor.violations == 0


def test_trace_check_spin_exclusivity_matches_the_monitor():
    trace = SimulationTrace()
    trace.add_interval(_interval(0, 0.0, 5.0, is_spin=True))
    trace.add_interval(_interval(0, 3.0, 6.0))
    problems = trace.check_spin_exclusivity()
    assert len(problems) == 1
    assert "busy-wait" in problems[0]
    # check_all surfaces it alongside the processor-exclusivity report.
    assert problems[0] in trace.check_all()


def test_trace_check_spin_exclusivity_ignores_clean_schedules():
    trace = SimulationTrace()
    trace.add_interval(_interval(0, 0.0, 5.0, is_spin=True))
    trace.add_interval(_interval(0, 5.0, 8.0))
    trace.add_interval(_interval(1, 2.0, 4.0))
    assert trace.check_spin_exclusivity() == []


# --------------------------------------------------------------------------- #
# Cross-protocol soundness: simulated WCRT never exceeds the bound
# --------------------------------------------------------------------------- #
BASELINES = [
    ("DPCP-p-EP", DpcpPEpTest),
    ("DPCP-p-EN", DpcpPEnTest),
    ("SPIN", SpinTest),
    ("LPP", LppTest),
]


def _simulate_accepted(protocol, test_class, seed, horizon_factor=3):
    """Analyse one random task set; simulate it if accepted.

    Returns ``(result, trace)`` or ``None`` when generation failed or the
    analysis rejected the set (nothing to validate).
    """
    config = tiny_config()
    try:
        taskset = generate_taskset(4.0, config, rng=seed)
    except GenerationError:
        return None
    result = test_class().test(taskset, Platform(16))
    if not result.schedulable or result.partition is None:
        return None
    simulator = RuntimeSimulator(result.partition, protocol=behavior_for(protocol))
    horizon = horizon_factor * max(task.period for task in taskset)
    simulator.release_periodic_jobs(horizon)
    return result, simulator.run()


@pytest.mark.parametrize("protocol,test_class", BASELINES)
@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_property_simulation_sound_for_every_baseline(protocol, test_class, seed):
    """Accepted task sets meet deadlines and stay within the WCRT bound."""
    outcome = _simulate_accepted(protocol, test_class, seed)
    if outcome is None:
        return
    result, trace = outcome
    assert trace.deadline_misses() == []
    assert trace.check_mutual_exclusion() == []
    assert trace.check_processor_exclusivity() == []
    assert trace.check_spin_exclusivity() == []
    for task_id, analysis in result.task_analyses.items():
        observed = trace.worst_response_time(task_id)
        if observed is None:
            continue
        assert observed <= analysis.wcrt + 1e-6, (
            f"{protocol}: task {task_id} observed {observed} "
            f"> bound {analysis.wcrt}"
        )


@pytest.mark.parametrize("protocol,test_class", BASELINES)
def test_fixed_seed_soundness_for_every_baseline(protocol, test_class):
    """One deterministic accepted-and-simulated run per baseline."""
    for seed in range(2020, 2060):
        outcome = _simulate_accepted(protocol, test_class, seed, horizon_factor=2)
        if outcome is not None:
            break
    else:
        pytest.fail("no seed in range produced an accepted task set")
    result, trace = outcome
    assert trace.deadline_misses() == []
    assert trace.check_mutual_exclusion() == []
    assert trace.check_processor_exclusivity() == []
    assert trace.check_spin_exclusivity() == []
    for task_id, analysis in result.task_analyses.items():
        observed = trace.worst_response_time(task_id)
        if observed is not None:
            assert observed <= analysis.wcrt + 1e-6
