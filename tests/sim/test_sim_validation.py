"""Validation-layer tests: budgets, horizons, online invariant counters."""

from __future__ import annotations

import pickle

import pytest

from repro.model.dag import DAG
from repro.model.platform import Cluster, PartitionedSystem, Platform
from repro.model.resources import ResourceUsage
from repro.model.task import DAGTask, TaskSet, Vertex
from repro.sim import (
    DpcpPSimulator,
    InvariantMonitor,
    SimulationConfig,
    SimulationTruncated,
    capped_hyperperiod,
    validate_partition,
    validation_horizon,
)
from repro.sim.trace import ExecutionInterval


def two_task_global_system():
    """Two single-vertex-chain tasks sharing one global resource."""
    task0 = DAGTask(
        0,
        [Vertex(0, 3.0, requests={5: 1}), Vertex(1, 2.0)],
        DAG(2, [(0, 1)]),
        period=30.0,
        resource_usages=[ResourceUsage(5, 1, 2.0)],
        priority=2,
    )
    task1 = DAGTask(
        1,
        [Vertex(0, 3.0, requests={5: 1}), Vertex(1, 2.0)],
        DAG(2, [(0, 1)]),
        period=40.0,
        resource_usages=[ResourceUsage(5, 1, 2.0)],
        priority=1,
    )
    taskset = TaskSet([task0, task1])
    platform = Platform(4)
    clusters = {0: Cluster(0, [0]), 1: Cluster(1, [1])}
    return PartitionedSystem(taskset, platform, clusters, {5: 2})


# --------------------------------------------------------------------------- #
# SimulationConfig
# --------------------------------------------------------------------------- #
def test_simulation_config_round_trips_and_pickles():
    config = SimulationConfig(
        hyperperiods=3, hyperperiod_cap_factor=8.0, max_events=123,
        wall_clock_seconds=1.5, retain_trace=True,
    )
    assert SimulationConfig.from_dict(config.to_dict()) == config
    assert pickle.loads(pickle.dumps(config)) == config
    # None budgets survive the round trip too.
    unbounded = SimulationConfig(max_events=None, wall_clock_seconds=None)
    assert SimulationConfig.from_dict(unbounded.to_dict()) == unbounded


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(hyperperiods=0),
        dict(hyperperiod_cap_factor=0.5),
        dict(max_events=0),
        dict(wall_clock_seconds=0.0),
        dict(wall_clock_seconds=-1.0),
    ],
)
def test_simulation_config_rejects_invalid_values(kwargs):
    with pytest.raises(ValueError):
        SimulationConfig(**kwargs)


# --------------------------------------------------------------------------- #
# Horizon / hyperperiod
# --------------------------------------------------------------------------- #
def test_capped_hyperperiod_is_the_lcm_when_small():
    partition = two_task_global_system()  # periods 30 and 40 -> lcm 120
    assert capped_hyperperiod(partition.taskset) == pytest.approx(120.0)
    config = SimulationConfig(hyperperiods=2)
    assert validation_horizon(partition.taskset, config) == pytest.approx(240.0)


def test_capped_hyperperiod_caps_pathological_lcms():
    # Coprime-ish periods whose true LCM dwarfs the cap.
    def task(tid, period):
        return DAGTask(tid, [Vertex(0, 1.0)], DAG(1, []), period=period)

    taskset = TaskSet([task(0, 997.0), task(1, 1009.0), task(2, 1013.0)])
    assert capped_hyperperiod(taskset, cap_factor=4.0) == pytest.approx(4 * 1013.0)


# --------------------------------------------------------------------------- #
# InvariantMonitor
# --------------------------------------------------------------------------- #
def _interval(processor, start, end, resource=None):
    return ExecutionInterval(
        processor=processor, start=start, end=end,
        task_id=0, job_id=0, vertex=0, resource=resource,
    )


def test_monitor_counts_processor_overlaps():
    monitor = InvariantMonitor()
    monitor(_interval(0, 0.0, 2.0))
    monitor(_interval(0, 1.0, 3.0))  # overlaps on processor 0
    monitor(_interval(1, 0.0, 3.0))  # different processor: fine
    monitor(_interval(0, 3.0, 4.0))  # back-to-back: fine
    assert monitor.processor_overlaps == 1
    assert monitor.mutual_exclusion_violations == 0
    assert monitor.violations == 1


def test_monitor_counts_mutual_exclusion_violations_across_processors():
    monitor = InvariantMonitor()
    monitor(_interval(0, 0.0, 2.0, resource=7))
    monitor(_interval(1, 1.0, 3.0, resource=7))  # same resource, overlapping
    monitor(_interval(2, 3.0, 4.0, resource=7))  # serialised: fine
    assert monitor.mutual_exclusion_violations == 1
    assert monitor.processor_overlaps == 0


def test_monitor_ignores_sub_eps_overlap():
    monitor = InvariantMonitor()
    monitor(_interval(0, 0.0, 1.0, resource=1))
    monitor(_interval(1, 1.0 - 1e-12, 2.0, resource=1))
    assert monitor.violations == 0


# --------------------------------------------------------------------------- #
# Budgets and truncation
# --------------------------------------------------------------------------- #
def test_event_budget_truncates_instead_of_running_on():
    partition = two_task_global_system()
    simulator = DpcpPSimulator(partition)
    simulator.release_periodic_jobs(12000.0)
    with pytest.raises(SimulationTruncated) as cut:
        simulator.run(max_events=25)
    assert cut.value.reason == "event_budget"
    assert cut.value.events_processed >= 25
    # The trace so far is intact: recorded jobs exist, none inconsistent.
    assert simulator.trace.check_all() == []


def test_wall_clock_budget_truncates_long_runs():
    partition = two_task_global_system()
    simulator = DpcpPSimulator(partition)
    # Enough releases that the run comfortably exceeds one check interval.
    simulator.release_periodic_jobs(60000.0)
    with pytest.raises(SimulationTruncated) as cut:
        simulator.run(wall_clock_seconds=1e-9)
    assert cut.value.reason == "wall_clock_budget"


def test_run_rejects_negative_budgets():
    simulator = DpcpPSimulator(two_task_global_system())
    with pytest.raises(ValueError):
        simulator.run(max_events=-1)
    with pytest.raises(ValueError):
        simulator.run(wall_clock_seconds=-0.5)


# --------------------------------------------------------------------------- #
# The fast no-trace path
# --------------------------------------------------------------------------- #
def test_record_trace_off_keeps_jobs_but_drops_intervals():
    partition = two_task_global_system()
    monitor = InvariantMonitor()
    fast = DpcpPSimulator(partition, record_trace=False, interval_observer=monitor)
    fast.release_periodic_jobs(120.0)
    fast.run()
    assert fast.trace.intervals == []
    assert fast.trace.requests == []
    assert monitor.intervals_observed > 0
    assert monitor.violations == 0

    # Response times match the trace-retaining run exactly.
    full = DpcpPSimulator(partition)
    full.release_periodic_jobs(120.0)
    full.run()
    assert fast.trace.response_times() == full.trace.response_times()


# --------------------------------------------------------------------------- #
# validate_partition
# --------------------------------------------------------------------------- #
def test_validate_partition_completed_outcome():
    partition = two_task_global_system()
    outcome = validate_partition(partition, SimulationConfig(hyperperiods=2))
    assert outcome.completed and outcome.status == "completed"
    assert outcome.horizon == pytest.approx(240.0)
    assert outcome.jobs_released == outcome.jobs_finished == 14
    assert outcome.deadline_misses == 0
    assert outcome.mutual_exclusion_violations == 0
    assert outcome.processor_overlaps == 0
    assert outcome.observed_response_times[0] == pytest.approx(5.0)
    assert outcome.observed_response_times[1] == pytest.approx(7.0)


def test_validate_partition_truncates_cleanly():
    partition = two_task_global_system()
    outcome = validate_partition(
        partition, SimulationConfig(hyperperiods=2, max_events=5)
    )
    assert outcome.status == "truncated"
    assert outcome.truncation_reason == "event_budget"
    assert outcome.jobs_finished <= outcome.jobs_released
    # Whatever finished is still reported (sound lower bounds).
    for observed in outcome.observed_response_times.values():
        assert observed > 0


def test_validate_partition_default_config_retains_no_trace():
    # The default config must stay cheap: no trace retention.
    assert SimulationConfig().retain_trace is False
    assert SimulationConfig().max_events is not None
