"""General simulator tests: protocol rules, invariants, and periodic runs."""

from __future__ import annotations

import pytest

from repro.model.dag import DAG
from repro.model.platform import Cluster, PartitionedSystem, Platform
from repro.model.resources import ResourceUsage
from repro.model.task import DAGTask, TaskSet, Vertex
from repro.sim import DpcpPSimulator, SimulationError, simulate_periodic
from repro.sim.behaviors import Segment, VertexBehavior


def single_task_system(requests=0, cs=1.0, processors=2):
    """One task with two parallel vertices, optionally using a local resource."""
    vertex_requests = {0: {1: requests}} if requests else {}
    usages = [ResourceUsage(1, requests, cs)] if requests else []
    task = DAGTask(
        task_id=0,
        vertices=[
            Vertex(0, 4.0, requests=dict(vertex_requests.get(0, {}))),
            Vertex(1, 4.0),
            Vertex(2, 2.0),
        ],
        dag=DAG(3, [(0, 2), (1, 2)]),
        period=40.0,
        resource_usages=usages,
        priority=1,
    )
    taskset = TaskSet([task])
    platform = Platform(max(2, processors))
    clusters = {0: Cluster(0, list(range(processors)))}
    return PartitionedSystem(taskset, platform, clusters, {})


def two_task_global_system():
    """Two single-vertex-chain tasks sharing one global resource."""
    task0 = DAGTask(
        0,
        [Vertex(0, 3.0, requests={5: 1}), Vertex(1, 2.0)],
        DAG(2, [(0, 1)]),
        period=30.0,
        resource_usages=[ResourceUsage(5, 1, 2.0)],
        priority=2,
    )
    task1 = DAGTask(
        1,
        [Vertex(0, 3.0, requests={5: 1}), Vertex(1, 2.0)],
        DAG(2, [(0, 1)]),
        period=40.0,
        resource_usages=[ResourceUsage(5, 1, 2.0)],
        priority=1,
    )
    taskset = TaskSet([task0, task1])
    platform = Platform(4)
    clusters = {0: Cluster(0, [0]), 1: Cluster(1, [1])}
    return PartitionedSystem(taskset, platform, clusters, {5: 2})


def test_parallel_execution_uses_both_processors():
    partition = single_task_system(processors=2)
    simulator = DpcpPSimulator(partition)
    simulator.release_job(0, 0.0)
    trace = simulator.run()
    # Two 4-unit vertices run in parallel, then the 2-unit join vertex: 6.
    assert trace.worst_response_time(0) == pytest.approx(6.0)
    assert trace.check_all() == []
    assert {i.processor for i in trace.intervals} == {0, 1}


def test_single_processor_serialises_execution():
    partition = single_task_system(processors=1)
    simulator = DpcpPSimulator(partition)
    simulator.release_job(0, 0.0)
    trace = simulator.run()
    assert trace.worst_response_time(0) == pytest.approx(10.0)
    assert trace.check_all() == []


def test_local_resource_mutual_exclusion():
    partition = single_task_system(requests=2, cs=1.0)
    simulator = DpcpPSimulator(partition)
    simulator.release_job(0, 0.0)
    trace = simulator.run()
    assert trace.check_mutual_exclusion() == []
    critical = [i for i in trace.intervals if i.resource == 1]
    assert len(critical) == 2
    assert all(not i.is_agent for i in critical)


def test_global_resource_priority_order_and_agent_placement():
    partition = two_task_global_system()
    simulator = DpcpPSimulator(partition)
    simulator.release_job(0, 0.0)
    simulator.release_job(1, 0.0)
    trace = simulator.run()
    assert trace.check_all() == []
    agents = [i for i in trace.intervals if i.is_agent]
    assert agents and all(i.processor == 2 for i in agents)
    # The higher-priority task's request is served first (both issued at the
    # same instant).
    ordered = sorted(trace.requests, key=lambda r: r.grant_time)
    assert ordered[0].task_id == 0
    assert ordered[1].grant_time >= ordered[0].finish_time - 1e-9


def test_release_job_rejects_negative_time():
    partition = single_task_system()
    simulator = DpcpPSimulator(partition)
    with pytest.raises(SimulationError):
        simulator.release_job(0, -1.0)


def test_periodic_release_and_run_until():
    partition = single_task_system(processors=2)
    simulator = DpcpPSimulator(partition)
    simulator.release_periodic_jobs(horizon=100.0)
    trace = simulator.run()
    finished = [r for r in trace.jobs.values() if r.finish_time is not None]
    assert len(finished) == 3  # releases at 0, 40, 80
    assert all(r.deadline_met for r in finished)
    assert trace.check_all() == []


def test_simulate_periodic_convenience_wrapper():
    partition = two_task_global_system()
    trace = simulate_periodic(partition, horizon=70.0)
    assert trace.jobs
    assert trace.check_all() == []


def test_run_until_stops_early():
    partition = single_task_system(processors=2)
    simulator = DpcpPSimulator(partition)
    simulator.release_periodic_jobs(horizon=200.0)
    trace = simulator.run(until=50.0)
    assert all(record.release_time <= 50.0 + 1e-9
               for record in trace.jobs.values()
               if record.finish_time is not None)
