"""Tests for the scenario grid, the sweep runner, and the figure builders."""

from __future__ import annotations

import pytest

from repro.analysis import DpcpPEnTest, FedFpTest, SpinTest
from repro.experiments.figures import (
    acceptance_series,
    render_ascii_plot,
    render_series_table,
    series_to_csv,
    write_series_csv,
)
from repro.experiments.runner import (
    SweepConfig,
    pairwise_statistics,
    run_campaign,
    run_sweep,
)
from repro.experiments.scenarios import (
    Scenario,
    figure2_scenarios,
    full_grid,
)


# --------------------------------------------------------------------------- #
# Scenario grid
# --------------------------------------------------------------------------- #
def test_full_grid_has_216_scenarios():
    grid = full_grid()
    assert len(grid) == 216
    assert len({s.scenario_id for s in grid}) == 216


def test_figure2_scenarios_match_the_caption():
    figures = figure2_scenarios()
    assert set(figures) == {"a", "b", "c", "d"}
    assert figures["a"].platform_size == 16
    assert figures["a"].access_probability == 0.5
    assert figures["a"].average_utilization == 1.5
    assert figures["b"].platform_size == 32
    assert figures["b"].resource_count_range == (8, 16)
    assert figures["c"].average_utilization == 2.0
    assert figures["d"].access_probability == 1.0
    for scenario in figures.values():
        assert scenario.request_count_range == (1, 50)
        assert scenario.cs_length_range == (50.0, 100.0)


def test_utilization_points_cover_zero_to_m():
    scenario = full_grid()[0]
    points = scenario.utilization_points()
    assert points[0] == pytest.approx(0.05 * scenario.platform_size)
    assert points[-1] == pytest.approx(scenario.platform_size)
    assert len(points) == 20


def test_scenario_generation_config_roundtrip():
    scenario = Scenario(
        platform_size=8,
        resource_count_range=(2, 4),
        average_utilization=2.0,
        access_probability=0.75,
        request_count_range=(1, 25),
        cs_length_range=(15.0, 50.0),
        num_vertices_range=(10, 20),
    )
    config = scenario.generation_config()
    assert config.average_utilization == 2.0
    assert config.resources.access_probability == 0.75
    assert config.dag.num_vertices_range == (10, 20)
    smaller = scenario.with_vertices((5, 8))
    assert smaller.num_vertices_range == (5, 8)
    assert smaller.platform_size == scenario.platform_size


# --------------------------------------------------------------------------- #
# Runner
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def tiny_sweep():
    scenario = Scenario(
        platform_size=8,
        resource_count_range=(2, 3),
        average_utilization=1.5,
        access_probability=0.5,
        request_count_range=(1, 5),
        cs_length_range=(15.0, 50.0),
        num_vertices_range=(6, 10),
    )
    config = SweepConfig(samples_per_point=3, utilization_step_fraction=0.25, seed=7)
    protocols = [DpcpPEnTest(), SpinTest(), FedFpTest()]
    return run_sweep(scenario, protocols=protocols, config=config)


def test_run_sweep_produces_complete_curves(tiny_sweep):
    assert set(tiny_sweep.curves) == {"DPCP-p-EN", "SPIN", "FED-FP"}
    for curve in tiny_sweep.curves.values():
        assert len(curve.utilizations) == 4  # steps of 0.25 * m
        assert all(0 <= ratio <= 1 for ratio in curve.acceptance_ratios)
        assert all(sampled <= 3 for sampled in curve.sampled)


def test_run_sweep_is_deterministic(tiny_sweep):
    scenario = tiny_sweep.scenario
    config = SweepConfig(samples_per_point=3, utilization_step_fraction=0.25, seed=7)
    repeat = run_sweep(
        scenario, protocols=[DpcpPEnTest(), SpinTest(), FedFpTest()], config=config
    )
    for name, curve in tiny_sweep.curves.items():
        assert repeat.curves[name].accepted == curve.accepted


def test_progress_callback_invoked(tiny_sweep):
    scenario = tiny_sweep.scenario
    calls = []
    config = SweepConfig(samples_per_point=1, utilization_step_fraction=0.5, seed=1)
    run_sweep(
        scenario,
        protocols=[FedFpTest()],
        config=config,
        progress=lambda sc, u, accepted: calls.append((sc.scenario_id, u, dict(accepted))),
    )
    assert len(calls) == 2


def test_campaign_and_pairwise_statistics(tiny_sweep):
    scenario = tiny_sweep.scenario
    config = SweepConfig(samples_per_point=2, utilization_step_fraction=0.5, seed=3)
    protocols = [DpcpPEnTest(), FedFpTest()]
    results = run_campaign([scenario, scenario], protocols=protocols, config=config)
    assert len(results) == 2
    stats = pairwise_statistics(results)
    assert stats.scenario_count == 2
    assert set(stats.protocols) == {"DPCP-p-EN", "FED-FP"}
    with pytest.raises(ValueError):
        pairwise_statistics([])


# --------------------------------------------------------------------------- #
# Figures
# --------------------------------------------------------------------------- #
def test_acceptance_series_and_table(tiny_sweep):
    series = acceptance_series(tiny_sweep)
    assert len(series) == 4
    assert set(series[0]) >= {"utilization", "normalized_utilization", "FED-FP"}
    text = render_series_table(tiny_sweep, title="Fig 2(x)")
    assert "Fig 2(x)" in text
    assert "FED-FP" in text


def test_ascii_plot_contains_legend(tiny_sweep):
    art = render_ascii_plot(tiny_sweep)
    assert "acceptance ratio" in art
    assert "FED-FP" in art


def test_failed_points_are_surfaced_not_fabricated():
    """A point where every task-set draw failed renders as n/a, not 0/1."""
    from repro.experiments.metrics import SweepCurve
    from repro.experiments.runner import SweepResult

    scenario = full_grid()[0]
    result = SweepResult(scenario=scenario)
    curve = SweepCurve(protocol="FED-FP")
    curve.add_point(2.0, accepted=1, sampled=2, generation_failures=0)
    curve.add_point(4.0, accepted=0, sampled=0, generation_failures=2)
    result.curves["FED-FP"] = curve

    series = acceptance_series(result)
    assert series[0]["generation_failures"] == 0
    assert series[1]["generation_failures"] == 2
    assert series[1]["FED-FP"] != series[1]["FED-FP"]  # NaN

    table = render_series_table(result)
    assert "n/a" in table
    assert "fails" in table

    csv_text = series_to_csv(result)
    lines = csv_text.splitlines()
    assert lines[0].endswith("generation_failures")
    assert lines[2].endswith(",,2")  # empty ratio cell, 2 failed draws

    art = render_ascii_plot(result)
    assert "FED-FP" in art  # NaN point renders as a gap, not a crash


def test_series_csv_roundtrip(tiny_sweep, tmp_path):
    csv_text = series_to_csv(tiny_sweep)
    assert csv_text.splitlines()[0].startswith("utilization,normalized_utilization")
    target = tmp_path / "fig2a.csv"
    write_series_csv(tiny_sweep, str(target))
    assert target.read_text() == csv_text
    assert len(csv_text.splitlines()) == 5  # header + 4 points


def test_parallel_run_campaign_requires_a_concrete_seed():
    scenario = full_grid()[0]
    config = SweepConfig(samples_per_point=1, utilization_step_fraction=0.5, seed=None)
    with pytest.raises(ValueError, match="seed"):
        run_campaign([scenario], config=config, workers=2)


def test_run_campaign_empty_selection_is_consistent_across_workers():
    assert run_campaign([], workers=1) == []
    assert run_campaign([], workers=4) == []
