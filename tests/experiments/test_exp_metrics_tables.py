"""Tests for experiment metrics (acceptance, dominance, outperformance) and tables."""

from __future__ import annotations

import pytest

from repro.experiments.metrics import (
    TIGHTNESS_BINS,
    PairwiseStatistics,
    SweepCurve,
    TightnessStats,
    ValidationRollup,
    dominates,
    outperforms,
    weighted_acceptance,
)
from repro.experiments.tables import (
    render_dominance_table,
    render_outperformance_table,
    table_rows,
)


def curve(protocol, ratios, samples=10):
    c = SweepCurve(protocol=protocol)
    for index, ratio in enumerate(ratios):
        c.add_point(utilization=float(index + 1), accepted=int(round(ratio * samples)), sampled=samples)
    return c


# --------------------------------------------------------------------------- #
# SweepCurve
# --------------------------------------------------------------------------- #
def test_sweep_curve_accumulates_points():
    c = curve("A", [1.0, 0.5, 0.0])
    assert c.acceptance_ratios == [1.0, 0.5, 0.0]
    assert c.total_accepted == 15
    assert c.total_sampled == 30
    assert c.normalized_utilizations(4) == [0.25, 0.5, 0.75]


def test_sweep_curve_validates_inputs():
    c = SweepCurve(protocol="A")
    with pytest.raises(ValueError):
        c.add_point(1.0, accepted=5, sampled=0)
    with pytest.raises(ValueError):
        c.add_point(1.0, accepted=11, sampled=10)


def test_sweep_curve_records_generation_failures():
    c = SweepCurve(protocol="A")
    c.add_point(1.0, accepted=1, sampled=2, generation_failures=1)
    c.add_point(2.0, accepted=0, sampled=0, generation_failures=3)
    assert c.generation_failures == [1, 3]
    assert c.total_generation_failures == 4
    ratios = c.acceptance_ratios
    assert ratios[0] == 0.5
    assert ratios[1] != ratios[1]  # NaN, not a fabricated 0/1 ratio
    with pytest.raises(ValueError):
        c.add_point(3.0, accepted=0, sampled=1, generation_failures=-1)


# --------------------------------------------------------------------------- #
# Dominance / outperformance
# --------------------------------------------------------------------------- #
def test_outperforms_compares_totals():
    a = curve("A", [1.0, 0.8])
    b = curve("B", [0.9, 0.8])
    assert outperforms(a, b)
    assert not outperforms(b, a)
    assert not outperforms(a, curve("C", [0.8, 1.0]))  # equal totals


def test_dominates_requires_never_below_and_somewhere_above():
    a = curve("A", [1.0, 0.8, 0.5])
    b = curve("B", [0.9, 0.8, 0.5])
    c = curve("C", [1.0, 0.9, 0.4])
    assert dominates(a, b)
    assert not dominates(b, a)
    assert not dominates(a, c)  # crossover
    assert not dominates(c, a)
    assert not dominates(a, curve("D", [1.0, 0.8, 0.5]))  # identical curves


def test_dominates_ignores_points_without_realised_task_sets():
    a = curve("A", [1.0, 0.8])
    b = curve("B", [0.9, 0.8])
    a.add_point(3.0, accepted=0, sampled=0, generation_failures=5)
    b.add_point(3.0, accepted=0, sampled=0, generation_failures=5)
    assert dominates(a, b)  # the NaN point carries no information
    assert not dominates(b, a)
    empty_a, empty_b = SweepCurve(protocol="A"), SweepCurve(protocol="B")
    empty_a.add_point(1.0, 0, 0, generation_failures=2)
    empty_b.add_point(1.0, 0, 0, generation_failures=2)
    assert not dominates(empty_a, empty_b)


def test_dominates_requires_matching_points():
    with pytest.raises(ValueError):
        dominates(curve("A", [1.0]), curve("B", [1.0, 0.5]))


def test_pairwise_statistics_counts():
    stats = PairwiseStatistics(protocols=["A", "B"])
    stats.record_scenario({"A": curve("A", [1.0, 0.8]), "B": curve("B", [0.9, 0.8])})
    stats.record_scenario({"A": curve("A", [0.5, 0.5]), "B": curve("B", [0.5, 0.5])})
    assert stats.scenario_count == 2
    assert stats.dominance["A"]["B"] == 1
    assert stats.dominance["B"]["A"] == 0
    assert stats.outperformance["A"]["B"] == 1
    assert stats.dominance_fraction("A", "B") == pytest.approx(0.5)
    assert stats.outperformance_fraction("B", "A") == pytest.approx(0.0)


def test_pairwise_statistics_rejects_missing_curves():
    stats = PairwiseStatistics(protocols=["A", "B"])
    with pytest.raises(ValueError):
        stats.record_scenario({"A": curve("A", [1.0])})


def test_weighted_acceptance():
    curves = [curve("A", [1.0, 0.0]), curve("A", [1.0, 1.0]), curve("B", [0.5, 0.5])]
    aggregated = weighted_acceptance(curves)
    assert aggregated["A"] == pytest.approx(0.75)
    assert aggregated["B"] == pytest.approx(0.5)


# --------------------------------------------------------------------------- #
# Tables 2 and 3
# --------------------------------------------------------------------------- #
def build_stats():
    stats = PairwiseStatistics(protocols=["DPCP-p-EP", "DPCP-p-EN", "SPIN", "LPP"])
    for _ in range(4):
        stats.record_scenario(
            {
                "DPCP-p-EP": curve("DPCP-p-EP", [1.0, 0.9]),
                "DPCP-p-EN": curve("DPCP-p-EN", [0.9, 0.8]),
                "SPIN": curve("SPIN", [0.8, 0.7]),
                "LPP": curve("LPP", [0.7, 0.6]),
            }
        )
    return stats


def test_render_tables_include_counts_and_percentages():
    stats = build_stats()
    table2 = render_dominance_table(stats)
    table3 = render_outperformance_table(stats)
    assert "Table 2" in table2 and "Table 3" in table3
    assert "4(100.0%)" in table2
    assert "N/A" in table2
    assert "DPCP-p-EP" in table3


def test_table_rows_structure():
    stats = build_stats()
    rows = table_rows(stats, "dominance")
    assert [row["protocol"] for row in rows] == ["DPCP-p-EP", "DPCP-p-EN", "SPIN", "LPP"]
    first = rows[0]
    assert first["DPCP-p-EP"] is None
    assert first["SPIN"] == 4
    with pytest.raises(ValueError):
        table_rows(stats, "nonsense")


def test_weighted_acceptance_is_nan_without_realised_samples():
    import math

    empty = SweepCurve(protocol="A")
    empty.add_point(1.0, accepted=0, sampled=0, generation_failures=3)
    aggregated = weighted_acceptance([empty])
    assert math.isnan(aggregated["A"])


# --------------------------------------------------------------------------- #
# Bound-tightness statistics (simulate-mode campaigns)
# --------------------------------------------------------------------------- #
def test_tightness_stats_fold_and_histogram():
    stats = TightnessStats()
    for ratio in (0.0, 0.05, 0.55, 1.0):
        stats.add(ratio)
    assert stats.count == 4
    assert stats.minimum == 0.0 and stats.maximum == 1.0
    assert stats.mean == pytest.approx(0.4)
    assert stats.histogram[0] == 2  # 0.0 and 0.05
    assert stats.histogram[5] == 1  # 0.55
    assert stats.histogram[-1] == 1  # 1.0 closes the top bin
    assert stats.overflows == 0
    with pytest.raises(ValueError):
        stats.add(-0.1)


def test_tightness_stats_count_bound_violations_as_overflows():
    stats = TightnessStats()
    stats.add(1.2)
    assert stats.overflows == 1
    assert sum(stats.histogram) == 0  # a violation never hides in a bin
    assert stats.maximum == 1.2


def test_tightness_stats_merge_is_order_independent():
    import math

    a, b = TightnessStats(), TightnessStats()
    for ratio in (0.1, 0.9):
        a.add(ratio)
    for ratio in (0.5, 1.3):
        b.add(ratio)
    ab = TightnessStats.from_dict(a.to_dict())
    ab.merge(b)
    ba = TightnessStats.from_dict(b.to_dict())
    ba.merge(a)
    assert ab.to_dict() == ba.to_dict()
    assert ab.count == 4 and ab.overflows == 1
    assert ab.minimum == 0.1 and ab.maximum == 1.3
    # Empty distributions merge as identities.
    empty = TightnessStats()
    empty.merge(TightnessStats())
    assert empty.count == 0 and empty.minimum is None
    assert math.isnan(empty.mean)


def test_tightness_stats_round_trip_and_bin_guard():
    stats = TightnessStats()
    stats.add(0.42)
    assert TightnessStats.from_dict(stats.to_dict()).to_dict() == stats.to_dict()
    bad = stats.to_dict()
    bad["histogram"] = [0] * (TIGHTNESS_BINS - 1)
    with pytest.raises(ValueError):
        TightnessStats.from_dict(bad)


def test_validation_rollup_merges_and_round_trips():
    first = ValidationRollup(simulated=2, truncated=1, deadline_misses=0)
    first.ratio.add(0.5)
    second = ValidationRollup(simulated=1, mutual_exclusion_violations=1)
    second.ratio.add(1.5)
    first.merge(second)
    assert first.simulated == 3 and first.truncated == 1
    assert first.violations == 2  # one ME violation + one ratio overflow
    assert ValidationRollup.from_dict(first.to_dict()).to_dict() == first.to_dict()
