"""Figure-renderer edge cases: NaN/gap handling and protocol validation.

The generation-failure conventions (NaN acceptance ratio -> ``n/a`` table
cell, ASCII-plot gap, empty CSV cell) were previously exercised only
implicitly through the sweep tests; these tests pin them directly, along
with the ``acceptance_series`` validation of empty and protocol-disjoint
sweeps.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments.figures import (
    acceptance_series,
    render_ascii_plot,
    render_series_table,
    series_to_csv,
)
from repro.experiments.metrics import SweepCurve
from repro.experiments.runner import SweepResult
from repro.experiments.scenarios import figure2_scenarios


def sweep_with(points, protocols=("SPIN", "LPP")) -> SweepResult:
    """Sweep over ``points`` = [(accepted..., sampled, failures), ...]."""
    scenario = figure2_scenarios(num_vertices_range=(5, 8))["a"]
    result = SweepResult(scenario=scenario)
    for protocol in protocols:
        result.curves[protocol] = SweepCurve(protocol=protocol)
    for index, (accepted, sampled, failures) in enumerate(points):
        for position, protocol in enumerate(protocols):
            result.curves[protocol].add_point(
                float(index + 1), accepted[position], sampled, failures
            )
    return result


@pytest.fixture
def gapped_sweep() -> SweepResult:
    """Three points; the middle one lost every task-set draw."""
    return sweep_with([((2, 1), 2, 0), ((0, 0), 0, 4), ((1, 0), 2, 1)])


# --------------------------------------------------------------------------- #
# NaN / gap conventions
# --------------------------------------------------------------------------- #
def test_acceptance_series_rows_are_nan_where_every_draw_failed(gapped_sweep):
    rows = acceptance_series(gapped_sweep)
    assert [row["generation_failures"] for row in rows] == [0, 4, 1]
    assert math.isnan(rows[1]["SPIN"]) and math.isnan(rows[1]["LPP"])
    assert rows[2]["SPIN"] == pytest.approx(0.5)


def test_series_table_renders_na_cells_and_failure_column(gapped_sweep):
    table = render_series_table(gapped_sweep)
    lines = table.splitlines()
    assert "fails" in lines[1]
    nan_row = lines[3]
    assert nan_row.count("n/a") == 2
    assert nan_row.rstrip().endswith("4")  # the failure count, not a ratio


def test_ascii_plot_leaves_gap_columns(gapped_sweep):
    art = render_ascii_plot(gapped_sweep)
    rows = [line[6:] for line in art.splitlines()[1:-2]]  # strip axis labels
    # Column 0 and 2 carry markers somewhere; the NaN column 1 is blank.
    assert any(row[0] != " " for row in rows)
    assert all(row[1] == " " for row in rows)
    assert any(row[2] != " " for row in rows)


def test_series_csv_leaves_empty_cells(gapped_sweep):
    lines = series_to_csv(gapped_sweep).splitlines()
    assert lines[0] == "utilization,normalized_utilization,SPIN,LPP,generation_failures"
    assert lines[2] == "2.0,0.125,,,4"


# --------------------------------------------------------------------------- #
# Validation (empty / protocol-disjoint sweeps)
# --------------------------------------------------------------------------- #
def test_acceptance_series_of_empty_sweep_is_empty():
    empty = SweepResult(scenario=figure2_scenarios()["a"])
    assert acceptance_series(empty) == []
    # Renderers degrade to headers instead of raising.
    assert render_series_table(empty).startswith("Scenario ")
    assert series_to_csv(empty) == "utilization,normalized_utilization,generation_failures\n"
    assert "acceptance ratio" in render_ascii_plot(empty)


def test_acceptance_series_names_missing_protocols(gapped_sweep):
    with pytest.raises(ValueError, match=r"no curve for protocol\(s\) DPCP-p-EP"):
        acceptance_series(gapped_sweep, ["DPCP-p-EP", "SPIN"])
    with pytest.raises(ValueError, match="FED-FP"):
        render_series_table(gapped_sweep, ["FED-FP"])
    with pytest.raises(ValueError, match="NOPE"):
        series_to_csv(gapped_sweep, ["SPIN", "NOPE"])


def test_acceptance_series_rejects_duplicate_protocols(gapped_sweep):
    with pytest.raises(ValueError, match="duplicate protocol"):
        acceptance_series(gapped_sweep, ["SPIN", "SPIN"])


def test_explicit_protocol_order_is_preserved(gapped_sweep):
    rows = acceptance_series(gapped_sweep, ["LPP", "SPIN"])
    assert list(rows[0])[-2:] == ["LPP", "SPIN"]
    lines = series_to_csv(gapped_sweep, ["LPP", "SPIN"]).splitlines()
    assert lines[0] == "utilization,normalized_utilization,LPP,SPIN,generation_failures"
