"""Tier-1 enforcement of public-docstring coverage over ``src/repro``.

CI runs ``tools/check_docstrings.py`` as its docs gate; this test keeps the
same bar inside the regular suite so a missing public docstring fails fast
locally too.
"""

from __future__ import annotations

import os
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

import check_docstrings  # noqa: E402  (needs the tools/ path above)


def test_public_api_docstring_coverage_meets_the_bar(capsys):
    # Coverage is 100%; the bar is pinned there so it cannot regress
    # silently (matching the CI docs job).
    source = os.path.join(REPO_ROOT, "src", "repro")
    assert check_docstrings.main([source, "--fail-under", "100"]) == 0, (
        "public docstring coverage dropped below 100% — run "
        "'python tools/check_docstrings.py src/repro' for the missing list"
    )


def test_checker_detects_missing_docstrings(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(
        '"""Module docstring."""\n'
        "def documented():\n"
        '    """Has one."""\n'
        "def undocumented():\n"
        "    pass\n"
        "class Thing:\n"
        "    def method(self):\n"
        "        pass\n"
        "    def _private(self):\n"
        "        pass\n"
    )
    assert check_docstrings.main([str(bad), "--fail-under", "100"]) == 1
    out = capsys.readouterr().out
    assert "undocumented" in out
    assert "Thing.method" in out
    assert "_private" not in out
    # 2 of 5 public objects documented -> 40%, so a 40% bar passes.
    assert check_docstrings.main([str(bad), "--fail-under", "40", "--quiet"]) == 0


def test_checker_skips_property_setters_and_dunders(tmp_path, capsys):
    source = tmp_path / "props.py"
    source.write_text(
        '"""Module docstring."""\n'
        "class Box:\n"
        '    """A box."""\n'
        "    def __init__(self):\n"
        "        self._v = None\n"
        "    @property\n"
        "    def value(self):\n"
        '        """The value."""\n'
        "        return self._v\n"
        "    @value.setter\n"
        "    def value(self, v):\n"
        "        self._v = v\n"
    )
    assert check_docstrings.main([str(source), "--fail-under", "100"]) == 0


def test_checker_fails_cleanly_on_unparseable_input(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def (:\n")
    assert check_docstrings.main([str(broken)]) == 2
    assert "cannot parse" in capsys.readouterr().err


@pytest.mark.parametrize("name", ["__init__", "_helper"])
def test_private_and_dunder_names_are_not_counted(tmp_path, name):
    source = tmp_path / "mod.py"
    source.write_text(f'"""Doc."""\ndef {name}():\n    pass\n')
    assert check_docstrings.main([str(source), "--fail-under", "100"]) == 0
