"""Tier-1 enforcement of the docs-site gate (``tools/check_docs.py``).

CI runs the checker in its docs job; this test keeps the same bar inside
the regular suite — a broken relative link or an unmapped package fails
fast locally too.
"""

from __future__ import annotations

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

import check_docs  # noqa: E402  (needs the tools/ path above)


def _repo_stub(tmp_path, architecture_text):
    """A minimal fake repo: one package, one docs/architecture.md."""
    package = tmp_path / "src" / "repro" / "model"
    package.mkdir(parents=True)
    (package / "__init__.py").write_text("")
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "architecture.md").write_text(architecture_text)
    return tmp_path


def test_the_repository_docs_pass_the_gate(capsys):
    assert check_docs.main(["--repo", REPO_ROOT]) == 0, (
        "docs gate failed — run 'python tools/check_docs.py' for the list"
    )
    assert "PASSED" in capsys.readouterr().out


def test_broken_relative_link_fails(tmp_path, capsys):
    repo = _repo_stub(tmp_path, "`repro.model` is the model.\n")
    (repo / "README.md").write_text("See [missing](docs/nope.md).\n")
    assert check_docs.main(["--repo", str(repo)]) == 1
    out = capsys.readouterr().out
    assert "broken link -> docs/nope.md" in out


def test_resolving_links_and_anchors_pass(tmp_path, capsys):
    repo = _repo_stub(tmp_path, "`repro.model` is the model.\n")
    (repo / "README.md").write_text(
        "[arch](docs/architecture.md) [anchor](docs/architecture.md#x) "
        "[web](https://example.org) [self](#local) [mail](mailto:a@b.c)\n"
        "```\n[code](not/a/link.md)\n```\n"
    )
    assert check_docs.main(["--repo", str(repo)]) == 0
    assert "0 problem(s)" in capsys.readouterr().out


def test_unmapped_package_fails(tmp_path, capsys):
    repo = _repo_stub(tmp_path, "an architecture page naming nothing\n")
    assert check_docs.main(["--repo", str(repo)]) == 1
    assert "'repro.model' is not mentioned" in capsys.readouterr().out


def test_missing_architecture_page_fails(tmp_path, capsys):
    repo = _repo_stub(tmp_path, "`repro.model`\n")
    os.remove(repo / "docs" / "architecture.md")
    (repo / "docs" / "other.md").write_text("hi\n")
    assert check_docs.main(["--repo", str(repo)]) == 1
    assert "missing docs/architecture.md" in capsys.readouterr().out
