"""Fault-tolerance tests: containment, retry, quarantine, crash recovery.

Every failure mode here is *injected* through the deterministic
:mod:`repro.campaign.faultinject` harness — the same plans the chaos CI
job uses — so the recovery machinery is exercised on every run, not only
when something really crashes.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis import FedFpTest, SpinTest
from repro.campaign import faultinject
from repro.campaign.executor import RetryPolicy, execute_units
from repro.campaign.faultinject import (
    ENV_VAR,
    FAULT_KILL,
    FAULT_RAISE,
    FAULT_SLEEP,
    FaultPlan,
    FaultSpec,
    leave_stale_manifest_tmp,
    load_plan,
    tear_results_tail,
    write_plan,
)
from repro.campaign.planner import campaign_manifest, plan_campaign
from repro.campaign.store import CampaignStore
from repro.experiments.runner import SweepConfig
from repro.experiments.scenarios import Scenario
from repro.obs.sink import EventSink, events_path, iter_event_records


@pytest.fixture(scope="module")
def scenarios():
    base = Scenario(
        platform_size=8,
        resource_count_range=(2, 3),
        average_utilization=1.5,
        access_probability=0.5,
        request_count_range=(1, 5),
        cs_length_range=(15.0, 50.0),
        num_vertices_range=(6, 10),
    )
    return [base]


@pytest.fixture(scope="module")
def config():
    return SweepConfig(samples_per_point=2, utilization_step_fraction=0.25, seed=7)


def protocols():
    return [SpinTest(), FedFpTest()]


@pytest.fixture(scope="module")
def plan(scenarios, config):
    return plan_campaign(scenarios, config, [t.name for t in protocols()])


@pytest.fixture(scope="module")
def baseline(plan):
    """Fault-free serial results, keyed by unit id (volatile fields dropped)."""
    results = execute_units(plan.units, protocols(), workers=1)
    return {r.unit_id: _payload(r.to_record()) for r in results}


def _payload(record):
    return {
        key: value
        for key, value in record.items()
        if key not in ("completed_at", "elapsed_seconds")
    }


def _activate(monkeypatch, tmp_path, *faults, seed=0):
    """Write a fault plan, point the environment at it, return the plan."""
    state = str(tmp_path / "fault-state")
    path = write_plan(
        FaultPlan(faults=tuple(faults), seed=seed, state_dir=state),
        str(tmp_path / "fault-plan.json"),
    )
    monkeypatch.setenv(ENV_VAR, path)
    faultinject.clear_plan_cache()
    return load_plan(path)


def _event_types(directory):
    return [
        record.get("type") for record, _ in iter_event_records(events_path(directory))
    ]


# --------------------------------------------------------------------------- #
# Plan semantics
# --------------------------------------------------------------------------- #
def test_fault_selection_is_deterministic_and_seeded():
    spec = FaultSpec(kind=FAULT_RAISE, every=3, times=0)
    plan_a = FaultPlan(faults=(spec,), seed=1)
    plan_b = FaultPlan(faults=(spec,), seed=2)
    ids = [f"s:p{i:02d}" for i in range(60)]
    picked_a = [u for u in ids if plan_a.selects(spec, u)]
    assert picked_a == [u for u in ids if plan_a.selects(spec, u)]
    assert picked_a != [u for u in ids if plan_b.selects(spec, u)]
    pinned = FaultSpec(kind=FAULT_RAISE, times=0, unit_ids=("s:p07",))
    assert plan_a.selects(pinned, "s:p07")
    assert not plan_a.selects(pinned, "s:p08")


def test_times_budget_is_claimed_at_most_once(tmp_path):
    spec = FaultSpec(kind=FAULT_RAISE, times=1, unit_ids=("s:p00",))
    plan = FaultPlan(faults=(spec,), state_dir=str(tmp_path / "state"))
    with pytest.raises(faultinject.FaultInjected):
        plan.fire("s:p00")
    assert plan.fired(FAULT_RAISE, "s:p00") == 1
    plan.fire("s:p00")  # budget spent — silent
    assert plan.fired(FAULT_RAISE, "s:p00") == 1


def test_plan_with_budget_requires_state_dir():
    with pytest.raises(ValueError):
        FaultPlan(faults=(FaultSpec(kind=FAULT_RAISE, times=1),))


def test_plan_round_trips_through_json(tmp_path):
    plan = FaultPlan(
        faults=(
            FaultSpec(kind=FAULT_KILL, times=1, unit_ids=("a:p00",)),
            FaultSpec(kind=FAULT_SLEEP, every=5, times=0, seconds=1.5),
        ),
        seed=42,
        state_dir=str(tmp_path),
    )
    path = write_plan(plan, str(tmp_path / "plan.json"))
    assert load_plan(path) == plan


# --------------------------------------------------------------------------- #
# Containment, retry, quarantine (serial path)
# --------------------------------------------------------------------------- #
def test_transient_raise_is_retried_to_success(
    tmp_path, monkeypatch, plan, baseline
):
    victim = plan.units[1].unit_id
    fault_plan = _activate(
        monkeypatch,
        tmp_path,
        FaultSpec(kind=FAULT_RAISE, times=1, unit_ids=(victim,)),
    )
    store = CampaignStore(str(tmp_path / "store"))
    store.initialize(campaign_manifest(plan))
    sink = EventSink(store.directory)
    results = execute_units(
        plan.units, protocols(), workers=1, store=store, events=sink
    )
    sink.close()
    assert fault_plan.fired(FAULT_RAISE, victim) == 1
    assert {r.unit_id: _payload(r.to_record()) for r in results} == baseline
    assert store.unresolved_quarantine() == {}
    assert "unit_retried" in _event_types(store.directory)


def test_poison_unit_is_quarantined_and_campaign_completes(
    tmp_path, monkeypatch, plan, baseline
):
    victim = plan.units[0].unit_id
    _activate(
        monkeypatch,
        tmp_path,
        FaultSpec(kind=FAULT_RAISE, times=0, unit_ids=(victim,)),
    )
    store = CampaignStore(str(tmp_path / "store"))
    store.initialize(campaign_manifest(plan))
    sink = EventSink(store.directory)
    results = execute_units(
        plan.units,
        protocols(),
        workers=1,
        store=store,
        events=sink,
        retry=RetryPolicy(max_attempts=2),
    )
    sink.close()

    # Every other unit completed and matches the fault-free run.
    finished = {r.unit_id: _payload(r.to_record()) for r in results}
    assert victim not in finished
    assert finished == {k: v for k, v in baseline.items() if k != victim}

    # The poison unit never reached results.jsonl — only quarantine.jsonl.
    assert victim not in store.load_records()
    quarantined = store.unresolved_quarantine()
    assert set(quarantined) == {victim}
    assert quarantined[victim]["error_kind"] == "FaultInjected"
    assert quarantined[victim]["attempts"] == 2
    assert "traceback" in quarantined[victim]
    types = _event_types(store.directory)
    assert types.count("unit_retried") == 1
    assert types.count("unit_quarantined") == 1

    # Healing: with the fault gone, a resume retries and completes it.
    monkeypatch.delenv(ENV_VAR)
    faultinject.clear_plan_cache()
    resumed = execute_units(plan.units, protocols(), workers=1, store=store)
    assert {r.unit_id: _payload(r.to_record()) for r in resumed} == baseline
    assert store.unresolved_quarantine() == {}


def test_unit_deadline_converts_hang_into_timeout_error(
    tmp_path, monkeypatch, plan
):
    victim = plan.units[0].unit_id
    _activate(
        monkeypatch,
        tmp_path,
        FaultSpec(kind=FAULT_SLEEP, times=0, seconds=30.0, unit_ids=(victim,)),
    )
    store = CampaignStore(str(tmp_path / "store"))
    store.initialize(campaign_manifest(plan))
    results = execute_units(
        plan.units,
        protocols(),
        workers=1,
        store=store,
        retry=RetryPolicy(max_attempts=1),
        unit_deadline=0.2,
    )
    assert victim not in {r.unit_id for r in results}
    quarantined = store.unresolved_quarantine()
    assert quarantined[victim]["error_kind"] == "timeout"


def test_kill_fault_is_a_noop_on_the_in_process_path(
    tmp_path, monkeypatch, plan, baseline
):
    fault_plan = _activate(
        monkeypatch,
        tmp_path,
        FaultSpec(kind=FAULT_KILL, times=1, unit_ids=(plan.units[0].unit_id,)),
    )
    results = execute_units(plan.units, protocols(), workers=1)
    assert {r.unit_id: _payload(r.to_record()) for r in results} == baseline
    assert fault_plan.fired(FAULT_KILL, plan.units[0].unit_id) == 0


# --------------------------------------------------------------------------- #
# Worker-kill recovery (process-pool path) — the acceptance scenario
# --------------------------------------------------------------------------- #
def test_worker_kill_mid_campaign_recovers_bit_identical(
    tmp_path, monkeypatch, plan, baseline
):
    victim = plan.units[2].unit_id
    fault_plan = _activate(
        monkeypatch,
        tmp_path,
        FaultSpec(kind=FAULT_KILL, times=1, unit_ids=(victim,)),
    )
    store = CampaignStore(str(tmp_path / "store"))
    store.initialize(campaign_manifest(plan))
    sink = EventSink(store.directory)
    results = execute_units(
        plan.units,
        protocols(),
        workers=2,
        chunk_size=1,
        store=store,
        events=sink,
        retry=RetryPolicy(backoff_base=0.0),
    )
    sink.close()

    # The kill really happened (exactly once), the pool recovered, and the
    # final results are indistinguishable from the fault-free serial run.
    assert fault_plan.fired(FAULT_KILL, victim) == 1
    assert _event_types(store.directory).count("pool_crashed") >= 1
    assert {r.unit_id: _payload(r.to_record()) for r in results} == baseline
    assert store.unresolved_quarantine() == {}
    stored = {
        unit_id: _payload(record)
        for unit_id, record in store.load_records().items()
    }
    assert stored == baseline


def test_repeatedly_fatal_unit_is_cornered_and_quarantined(
    tmp_path, monkeypatch, plan, baseline
):
    victim = plan.units[1].unit_id
    _activate(
        monkeypatch,
        tmp_path,
        FaultSpec(kind=FAULT_KILL, times=0, unit_ids=(victim,)),
    )
    store = CampaignStore(str(tmp_path / "store"))
    store.initialize(campaign_manifest(plan))
    results = execute_units(
        plan.units,
        protocols(),
        workers=2,
        chunk_size=2,
        store=store,
        retry=RetryPolicy(max_attempts=2, backoff_base=0.0, max_pool_respawns=2),
    )
    finished = {r.unit_id: _payload(r.to_record()) for r in results}
    assert finished == {k: v for k, v in baseline.items() if k != victim}
    quarantined = store.unresolved_quarantine()
    assert set(quarantined) == {victim}
    assert quarantined[victim]["error_kind"] == "worker_crash"


# --------------------------------------------------------------------------- #
# Store-corruption artefacts
# --------------------------------------------------------------------------- #
def test_torn_results_tail_is_healed_on_next_append(tmp_path, plan):
    store = CampaignStore(str(tmp_path / "store"))
    store.initialize(campaign_manifest(plan))
    store.append({"unit_id": "u1", "value": 1})
    tear_results_tail(store.directory)
    assert set(store.load_records()) == {"u1"}  # torn tail never surfaces
    store.append({"unit_id": "u2", "value": 2})
    assert set(store.load_records()) == {"u1", "u2"}
    with open(store.results_path, "rb") as handle:
        assert all(line.endswith(b"\n") for line in handle)


def test_stale_manifest_tmp_is_cleaned_on_initialize(tmp_path, plan):
    directory = str(tmp_path / "store")
    manifest = campaign_manifest(plan)
    store = CampaignStore(directory)
    store.initialize(manifest)
    stale = leave_stale_manifest_tmp(directory)
    assert os.path.exists(stale)
    reopened = store.initialize(manifest)
    assert not os.path.exists(stale)
    assert reopened["config_hash"] == manifest["config_hash"]
    # The real manifest survived untouched and still parses.
    assert store.read_manifest()["config_hash"] == manifest["config_hash"]


def test_manifest_writes_are_atomic(tmp_path, plan, monkeypatch):
    directory = str(tmp_path / "store")
    manifest = campaign_manifest(plan)
    CampaignStore(directory).initialize(manifest)
    # No temporary survives a successful write.
    assert os.listdir(directory) == ["manifest.json"]
    with open(os.path.join(directory, "manifest.json")) as handle:
        assert json.load(handle)["config_hash"] == manifest["config_hash"]
