"""Simulate-mode campaign tests: planning, execution, budgets, resume."""

from __future__ import annotations

import json

import pytest

from repro.campaign import cli
from repro.campaign.executor import (
    UnitResult,
    build_protocols,
    execute_simulation_unit,
    plan_runner,
)
from repro.campaign.planner import (
    MODE_ANALYZE,
    MODE_SIMULATE,
    SIMULATABLE_PROTOCOLS,
    campaign_manifest,
    plan_campaign,
    plan_from_manifest,
    plan_scenario_units,
)
from repro.experiments.runner import SweepConfig
from repro.experiments.scenarios import figure2_scenarios
from repro.sim.validation import SimulationConfig

#: One cheap scenario for executor-level tests (tiny DAGs, coarse sweep).
SCENARIO = figure2_scenarios(num_vertices_range=(5, 8))["a"]
SWEEP = SweepConfig(samples_per_point=2, utilization_step_fraction=0.25, seed=2020)

#: CLI flags of the one-scenario simulate campaign used below (4 units).
SUBSET_FLAGS = [
    "--mode", "simulate",
    "--grid", "fig2",
    "--filter", "m=16,U=1.5",
    "--samples", "2",
    "--step", "0.25",
    "--vertices", "5,8",
    "--seed", "2020",
    "--sim-max-events", "150000",
    "--quiet",
]


def _strip_volatile(path):
    """Store records without their timing/timestamp fields, in unit order."""
    records = {}
    with open(path) as handle:
        for line in handle:
            record = json.loads(line)
            record.pop("completed_at", None)
            record.pop("elapsed_seconds", None)
            records[record["unit_id"]] = record
    return dict(sorted(records.items()))


# --------------------------------------------------------------------------- #
# Planning
# --------------------------------------------------------------------------- #
def test_simulate_mode_defaults_to_the_simulatable_suite():
    plan = plan_campaign([SCENARIO], SWEEP, mode=MODE_SIMULATE)
    assert tuple(plan.protocol_names) == SIMULATABLE_PROTOCOLS
    assert set(SIMULATABLE_PROTOCOLS) == {"DPCP-p-EP", "DPCP-p-EN", "SPIN", "LPP"}
    assert plan.sim_config == SimulationConfig()


def test_simulate_mode_refuses_unsimulatable_protocols():
    # FED-FP is the only remaining protocol without runtime rules; the
    # error names the offender, not just the acceptable list.
    with pytest.raises(ValueError, match="FED-FP cannot be simulated"):
        plan_campaign([SCENARIO], SWEEP, ["DPCP-p-EP", "FED-FP"], mode=MODE_SIMULATE)


def test_simulate_mode_accepts_the_spin_and_lpp_baselines():
    plan = plan_campaign(
        [SCENARIO], SWEEP, ["DPCP-p-EP", "DPCP-p-EN", "SPIN", "LPP"],
        mode=MODE_SIMULATE,
    )
    assert plan.protocol_names == ["DPCP-p-EP", "DPCP-p-EN", "SPIN", "LPP"]


def test_analyze_mode_refuses_a_simulation_config():
    with pytest.raises(ValueError, match="only meaningful"):
        plan_campaign([SCENARIO], SWEEP, sim_config=SimulationConfig())


def test_unknown_mode_is_refused():
    with pytest.raises(ValueError, match="unknown campaign mode"):
        plan_campaign([SCENARIO], SWEEP, mode="replay")


def test_manifest_round_trips_mode_and_simulation_config():
    sim_config = SimulationConfig(hyperperiods=3, max_events=777)
    plan = plan_campaign([SCENARIO], SWEEP, mode=MODE_SIMULATE, sim_config=sim_config)
    manifest = campaign_manifest(plan)
    assert manifest["mode"] == MODE_SIMULATE
    rebuilt = plan_from_manifest(manifest)
    assert rebuilt.mode == MODE_SIMULATE
    assert rebuilt.sim_config == sim_config
    assert campaign_manifest(rebuilt)["config_hash"] == manifest["config_hash"]


def test_mode_and_simulation_config_enter_the_config_hash():
    analyze = campaign_manifest(plan_campaign([SCENARIO], SWEEP, ["DPCP-p-EP"]))
    simulate = campaign_manifest(
        plan_campaign([SCENARIO], SWEEP, ["DPCP-p-EP"], mode=MODE_SIMULATE)
    )
    retuned = campaign_manifest(
        plan_campaign(
            [SCENARIO], SWEEP, ["DPCP-p-EP"], mode=MODE_SIMULATE,
            sim_config=SimulationConfig(hyperperiods=4),
        )
    )
    hashes = {m["config_hash"] for m in (analyze, simulate, retuned)}
    assert len(hashes) == 3


def test_plan_runner_matches_the_mode():
    analyze = plan_campaign([SCENARIO], SWEEP, ["DPCP-p-EP"])
    simulate = plan_campaign([SCENARIO], SWEEP, ["DPCP-p-EP"], mode=MODE_SIMULATE)
    assert plan_runner(analyze).__name__ == "execute_unit"
    partial = plan_runner(simulate)
    assert partial.func.__name__ == "execute_simulation_unit"
    assert partial.keywords == {
        "sim_config": simulate.sim_config,
        "telemetry": False,
        "batch_size": None,
    }


# --------------------------------------------------------------------------- #
# Execution
# --------------------------------------------------------------------------- #
def test_simulation_unit_respects_the_event_budget():
    # A budget far below one run's event count: every accepted task set
    # must come back truncated — quickly, not after a multi-second run.
    unit = plan_scenario_units(SCENARIO, SWEEP)[0]
    protocols = build_protocols(["DPCP-p-EP"])
    result = execute_simulation_unit(
        unit, protocols, SimulationConfig(max_events=50)
    )
    rollup = result.simulation["DPCP-p-EP"]
    assert result.accepted["DPCP-p-EP"] == rollup.simulated > 0
    assert rollup.truncated == rollup.simulated
    assert rollup.rule_failures == 0
    assert rollup.events <= rollup.simulated * (50 + 512)


def test_simulation_unit_record_round_trips():
    unit = plan_scenario_units(SCENARIO, SWEEP)[0]
    protocols = build_protocols(["DPCP-p-EP"])
    result = execute_simulation_unit(unit, protocols, SimulationConfig(max_events=50))
    record = result.to_record()
    rebuilt = UnitResult.from_record(json.loads(json.dumps(record)))
    assert rebuilt.to_record() == {
        k: v for k, v in record.items() if k != "completed_at"
    }
    assert rebuilt.simulation["DPCP-p-EP"].truncated > 0


def test_simulation_unit_acceptance_matches_the_analyze_runner():
    # Simulate mode must not change the acceptance counts: same seeds, same
    # analysis path, only extra validation on top.
    from repro.campaign.executor import execute_unit

    unit = plan_scenario_units(SCENARIO, SWEEP)[0]
    protocols = build_protocols(["DPCP-p-EP", "DPCP-p-EN"])
    analyzed = execute_unit(unit, protocols)
    simulated = execute_simulation_unit(
        unit, build_protocols(["DPCP-p-EP", "DPCP-p-EN"]),
        SimulationConfig(max_events=50),
    )
    assert simulated.accepted == analyzed.accepted
    assert simulated.evaluated == analyzed.evaluated
    assert simulated.generation_failures == analyzed.generation_failures


# --------------------------------------------------------------------------- #
# CLI: parallel determinism and resume from a killed store
# --------------------------------------------------------------------------- #
def test_simulate_campaign_is_parallel_deterministic_and_resumable(tmp_path):
    serial = str(tmp_path / "serial")
    assert cli.main(["run", "--store", serial, *SUBSET_FLAGS]) == 0

    # Kill the campaign after 2 of 4 units, then resume with 2 workers.
    resumed = str(tmp_path / "resumed")
    assert cli.main(["run", "--store", resumed, *SUBSET_FLAGS,
                     "--max-units", "2"]) == 3
    assert len(_strip_volatile(f"{resumed}/results.jsonl")) == 2
    assert cli.main(["resume", "--store", resumed, "--workers", "2",
                     "--quiet"]) == 0

    assert _strip_volatile(f"{serial}/results.jsonl") == _strip_volatile(
        f"{resumed}/results.jsonl"
    )


def test_cli_refuses_unsimulatable_protocols(tmp_path, capsys):
    store = str(tmp_path / "store")
    code = cli.main(["run", "--store", store, *SUBSET_FLAGS,
                     "--protocols", "SPIN,FED-FP"])
    assert code == 2
    err = capsys.readouterr().err
    assert "FED-FP cannot be simulated" in err
    # SPIN is simulatable now — only the offender is named.
    assert "SPIN cannot" not in err
