"""Executor tests: parallel/serial determinism, checkpointing, assembly."""

from __future__ import annotations

import pytest

from repro.analysis import DpcpPEnTest, FedFpTest, SpinTest
from repro.campaign.executor import (
    UnitResult,
    assemble_campaign,
    build_protocols,
    execute_plan,
    execute_units,
)
from repro.campaign.planner import campaign_manifest, plan_campaign
from repro.campaign.store import CampaignStore
from repro.experiments.runner import SweepConfig, run_campaign, run_sweep
from repro.experiments.scenarios import Scenario


@pytest.fixture(scope="module")
def scenarios():
    base = Scenario(
        platform_size=8,
        resource_count_range=(2, 3),
        average_utilization=1.5,
        access_probability=0.5,
        request_count_range=(1, 5),
        cs_length_range=(15.0, 50.0),
        num_vertices_range=(6, 10),
    )
    from dataclasses import replace

    return [base, replace(base, access_probability=0.75)]


@pytest.fixture(scope="module")
def config():
    return SweepConfig(samples_per_point=3, utilization_step_fraction=0.25, seed=7)


def protocols():
    return [DpcpPEnTest(), SpinTest(), FedFpTest()]


def curves_of(sweep):
    return {
        name: (
            curve.utilizations,
            curve.accepted,
            curve.sampled,
            curve.generation_failures,
        )
        for name, curve in sweep.curves.items()
    }


def test_workers1_matches_serial_run_sweep(scenarios, config):
    serial = run_sweep(scenarios[0], protocols=protocols(), config=config)
    plan = plan_campaign([scenarios[0]], config, [t.name for t in protocols()])
    results = execute_units(plan.units, protocols(), workers=1)
    [assembled] = assemble_campaign(plan, results)
    assert curves_of(assembled) == curves_of(serial)


def test_workers4_is_bit_identical_to_workers1(scenarios, config):
    names = [t.name for t in protocols()]
    plan = plan_campaign(scenarios, config, names)
    serial = execute_units(plan.units, protocols(), workers=1)
    parallel = execute_units(plan.units, protocols(), workers=4, chunk_size=1)

    def payload(result):
        record = result.to_record()
        del record["elapsed_seconds"]  # wall-clock metadata, not results
        return record

    assert [payload(r) for r in serial] == [payload(r) for r in parallel]
    sweeps_serial = assemble_campaign(plan, serial)
    sweeps_parallel = assemble_campaign(plan, parallel)
    for a, b in zip(sweeps_serial, sweeps_parallel):
        assert curves_of(a) == curves_of(b)


def test_run_campaign_parallel_path_matches_serial(scenarios, config):
    serial = run_campaign(scenarios, protocols=protocols(), config=config)
    parallel = run_campaign(scenarios, protocols=protocols(), config=config, workers=2)
    assert len(serial) == len(parallel)
    for a, b in zip(serial, parallel):
        assert a.scenario == b.scenario
        assert curves_of(a) == curves_of(b)


def test_store_checkpoints_and_skips_finished_units(scenarios, config, tmp_path):
    plan = plan_campaign(scenarios, config, ["SPIN", "FED-FP"])
    tests = build_protocols(plan.protocol_names)
    store = CampaignStore(str(tmp_path))
    store.initialize(campaign_manifest(plan))

    partial = execute_units(plan.units, tests, store=store, max_units=3)
    assert len(partial) == 3
    assert len(store.completed_ids()) == 3

    progressed = []
    complete = execute_units(
        plan.units,
        tests,
        store=store,
        progress=lambda done, total, result: progressed.append(result),
    )
    assert len(complete) == len(plan.units)
    # The first progress call restores the checkpointed units in bulk
    # (result=None); only the remaining units were actually executed.
    assert progressed[0] is None
    assert len([r for r in progressed if r is not None]) == len(plan.units) - 3
    assert len(store.completed_ids()) == len(plan.units)


def test_execute_plan_builds_protocols_from_names(scenarios, config):
    plan = plan_campaign([scenarios[0]], config, ["SPIN"])
    results = execute_plan(plan)
    assert all(set(r.accepted) == {"SPIN"} for r in results)
    assert len(results) == len(plan.units)


def test_assemble_campaign_rejects_or_skips_partial(scenarios, config):
    plan = plan_campaign(scenarios, config, ["SPIN"])
    tests = build_protocols(["SPIN"])
    # Complete one scenario only (4 of 8 units).
    results = execute_units(plan.units[:4], tests)
    with pytest.raises(ValueError):
        assemble_campaign(plan, results)
    sweeps = assemble_campaign(plan, results, allow_partial=True)
    assert [s.scenario for s in sweeps] == [scenarios[0]]


def test_unit_result_record_roundtrip():
    result = UnitResult(
        unit_id="s:p00",
        scenario_id="s",
        point_index=0,
        utilization=2.0,
        accepted={"SPIN": 1},
        evaluated=3,
        generation_failures=1,
        elapsed_seconds=0.25,
    )
    assert UnitResult.from_record(result.to_record()) == result


def test_build_protocols_rejects_unknown_names():
    with pytest.raises(ValueError):
        build_protocols(["SPIN", "NOPE"])


def test_duplicate_protocols_are_refused(scenarios, config):
    """Duplicate names would double-count into one accepted slot."""
    with pytest.raises(ValueError, match="duplicate"):
        build_protocols(["SPIN", "SPIN"])
    plan = plan_campaign([scenarios[0]], config, ["SPIN"])
    with pytest.raises(ValueError, match="duplicate"):
        execute_units(plan.units, [SpinTest(), SpinTest()])
    with pytest.raises(ValueError, match="duplicate"):
        plan_campaign([scenarios[0]], config, ["SPIN", "SPIN"])


def test_negative_max_units_and_chunk_size_are_refused(scenarios, config):
    plan = plan_campaign([scenarios[0]], config, ["SPIN"])
    with pytest.raises(ValueError, match="max_units"):
        execute_units(plan.units, build_protocols(["SPIN"]), max_units=-3)
    with pytest.raises(ValueError, match="chunk_size"):
        execute_units(plan.units, build_protocols(["SPIN"]), chunk_size=0)


def test_run_campaign_handles_duplicate_scenarios_on_both_paths(scenarios, config):
    """The workers knob must never change the outcome (see DESIGN.md)."""
    duplicated = [scenarios[0], scenarios[0]]
    serial = run_campaign(duplicated, protocols=protocols(), config=config, workers=1)
    parallel = run_campaign(duplicated, protocols=protocols(), config=config, workers=2)
    assert len(serial) == len(parallel) == 2
    for a, b in zip(serial, parallel):
        assert curves_of(a) == curves_of(b)
