"""Arena batching at the campaign level (PR 8).

The ``--batch-size`` knob changes how a unit executes — per-sample loop,
chunked arena solves, or one whole-unit arena — never what it records:
with clocks frozen, ``results.jsonl`` must be byte-identical across every
batch size and worker count, and acceptance counts identical in memory.
"""

from __future__ import annotations

import os

import pytest

from repro.campaign import cli
from repro.campaign.executor import build_protocols, execute_unit
from repro.campaign.planner import plan_campaign
from repro.experiments.runner import SweepConfig
from repro.experiments.scenarios import Scenario

from test_campaign_obs import RUN_FLAGS, _freeze_clocks, _read_bytes

SCENARIO = Scenario(
    platform_size=8,
    resource_count_range=(2, 4),
    average_utilization=1.0,
    access_probability=1.0,
    request_count_range=(1, 6),
    cs_length_range=(1.0, 15.0),
    num_vertices_range=(4, 8),
)
SWEEP = SweepConfig(samples_per_point=6, utilization_step_fraction=0.5, seed=31)


def _run(tmp_path, label, *extra):
    store = str(tmp_path / label)
    assert cli.main(["run", "--store", store, *RUN_FLAGS, *extra]) == 0
    return os.path.join(store, "results.jsonl")


def test_store_bytes_identical_across_batch_sizes(tmp_path, monkeypatch):
    _freeze_clocks(monkeypatch)
    baseline = _read_bytes(_run(tmp_path, "per-sample"))
    for label, extra in [
        ("batch-1", ["--batch-size", "1"]),
        ("batch-7", ["--batch-size", "7"]),
        ("batch-full", ["--batch-size", "0"]),
    ]:
        assert _read_bytes(_run(tmp_path, label, *extra)) == baseline, label


def test_store_identical_across_workers_with_batching(tmp_path):
    """Worker processes keep their real clocks and complete in pool order,
    so the worker-count axis is compared with the timing fields stripped
    and the records keyed by unit id (the repo-wide convention for
    cross-process identity)."""
    import json

    def payload(path):
        with open(path) as handle:
            records = [json.loads(line) for line in handle if line.strip()]
        for record in records:
            del record["elapsed_seconds"]
            del record["completed_at"]
        return sorted(records, key=lambda record: record["unit_id"])

    serial = payload(_run(tmp_path, "w1", "--batch-size", "7"))
    pooled = payload(
        _run(tmp_path, "w2", "--batch-size", "7", "--workers", "2")
    )
    assert serial == pooled


def test_unit_results_identical_across_batch_sizes():
    plan = plan_campaign([SCENARIO], SWEEP)
    protocols = build_protocols(plan.protocol_names)
    for unit in plan.units:
        baseline = execute_unit(unit, protocols)
        for batch_size in (1, 2, 7, 0):
            result = execute_unit(unit, protocols, batch_size=batch_size)
            assert result.accepted == baseline.accepted
            assert result.evaluated == baseline.evaluated
            assert result.generation_failures == baseline.generation_failures


def test_batched_unit_counts_generation_failures_per_sample():
    # An unsatisfiable point: per-task utilization bounds make most draws
    # fail, and the batched path must count each failure individually.
    scenario = Scenario(
        platform_size=4,
        resource_count_range=(1, 2),
        average_utilization=1.0,
        access_probability=1.0,
        request_count_range=(1, 2),
        cs_length_range=(1.0, 2.0),
        num_vertices_range=(4, 6),
    )
    plan = plan_campaign(
        [scenario],
        SweepConfig(samples_per_point=8, utilization_step_fraction=1.0, seed=5),
    )
    protocols = build_protocols(plan.protocol_names)
    unit = plan.units[-1]
    serial = execute_unit(unit, protocols)
    batched = execute_unit(unit, protocols, batch_size=0)
    assert batched.generation_failures == serial.generation_failures
    assert batched.evaluated == serial.evaluated
    assert batched.evaluated + batched.generation_failures == unit.samples_per_point


def test_profile_reports_arena_batching(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert cli.main(
        ["run", "--store", store, *RUN_FLAGS, "--batch-size", "0"]
    ) == 0
    capsys.readouterr()
    assert cli.main(["profile", "--store", store]) == 0
    out = capsys.readouterr().out
    assert "arena batching" in out
    assert "tasksets batched" in out
    assert "requests/solve" in out
    assert "per-sample fallbacks" in out


def test_profile_omits_arena_section_for_per_sample_runs(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert cli.main(["run", "--store", store, *RUN_FLAGS]) == 0
    capsys.readouterr()
    assert cli.main(["profile", "--store", store]) == 0
    assert "arena batching" not in capsys.readouterr().out


def test_batched_fallback_counts_non_arena_protocols(tmp_path):
    """FED-FP has no arena driver: its verdicts fall back per sample."""
    import json

    from repro.obs.sink import events_path, iter_event_records

    store = str(tmp_path / "store")
    assert cli.main(
        ["run", "--store", store, *RUN_FLAGS, "--batch-size", "0"]
    ) == 0
    counters = {}
    for record, _ in iter_event_records(events_path(store)):
        if record.get("type") == "unit_telemetry":
            for name, value in record["telemetry"]["counters"].items():
                counters[name] = counters.get(name, 0) + value
    assert counters.get("arena.fallbacks", 0) > 0
    assert counters.get("arena.tasksets", 0) > 0
    with open(os.path.join(store, "results.jsonl")) as handle:
        records = [json.loads(line) for line in handle if line.strip()]
    assert all("FED-FP" in record["accepted"] for record in records)
