"""Observability-at-the-campaign-level tests.

The load-bearing guarantee: telemetry is strictly **out-of-band**.  With
every clock frozen, a campaign run with telemetry and one run with
``--no-telemetry`` must produce byte-identical ``results.jsonl`` files —
the event stream adds a sibling ``events.jsonl``, never perturbs results.
"""

from __future__ import annotations

import json
import os
import re
import time

from repro.campaign import cli
from repro.campaign import store as store_module
from repro.campaign.planner import FORMAT_VERSION
from repro.obs.events import (
    CampaignFinished,
    CampaignStarted,
    SolveStats,
    UnitFinished,
    UnitStarted,
    UnitTelemetry,
)
from repro.obs.sink import events_path, iter_event_records, read_events

#: Same cheap 2-scenario campaign as test_campaign_cli (4 work units).
RUN_FLAGS = [
    "--grid", "fig2",
    "--filter", "m=16",
    "--samples", "2",
    "--step", "0.5",
    "--vertices", "5,8",
    "--protocols", "SPIN,FED-FP",
    "--seed", "2020",
    "--quiet",
]
TOTAL_UNITS = 4


def _freeze_clocks(monkeypatch):
    """Pin every results.jsonl-visible clock.

    ``perf_counter`` is frozen to a *constant* (not an incrementing fake):
    telemetry spans add extra ``perf_counter`` calls, so any advancing
    clock would change ``elapsed_seconds`` between the on/off runs and the
    comparison would measure the fake clock, not the out-of-band contract.
    """
    monkeypatch.setattr(time, "perf_counter", lambda: 0.0)
    monkeypatch.setattr(
        store_module, "_utcnow_iso", lambda: "2026-01-01T00:00:00Z"
    )


def _read_bytes(path):
    with open(path, "rb") as handle:
        return handle.read()


def test_results_bytes_identical_with_telemetry_on_and_off(tmp_path, monkeypatch):
    _freeze_clocks(monkeypatch)
    with_events = str(tmp_path / "with")
    without = str(tmp_path / "without")
    assert cli.main(["run", "--store", with_events, *RUN_FLAGS]) == 0
    assert (
        cli.main(["run", "--store", without, *RUN_FLAGS, "--no-telemetry"]) == 0
    )

    assert _read_bytes(
        os.path.join(with_events, "results.jsonl")
    ) == _read_bytes(os.path.join(without, "results.jsonl"))

    # Same campaign identity either way; telemetry is invisible to the
    # config hash and the store format.
    manifests = []
    for store in (with_events, without):
        with open(os.path.join(store, "manifest.json")) as handle:
            manifests.append(json.load(handle))
    assert manifests[0]["config_hash"] == manifests[1]["config_hash"]
    assert manifests[0]["format_version"] == FORMAT_VERSION

    # The only difference: the sibling event stream.
    assert os.path.isfile(events_path(with_events))
    assert not os.path.exists(events_path(without))


def test_results_bytes_identical_with_telemetry_on_and_off_batched(
    tmp_path, monkeypatch
):
    """The arena-batched path honours the same out-of-band contract."""
    _freeze_clocks(monkeypatch)
    flags = [*RUN_FLAGS, "--batch-size", "0"]
    with_events = str(tmp_path / "with")
    without = str(tmp_path / "without")
    assert cli.main(["run", "--store", with_events, *flags]) == 0
    assert (
        cli.main(["run", "--store", without, *flags, "--no-telemetry"]) == 0
    )
    assert _read_bytes(
        os.path.join(with_events, "results.jsonl")
    ) == _read_bytes(os.path.join(without, "results.jsonl"))
    assert os.path.isfile(events_path(with_events))
    assert not os.path.exists(events_path(without))


def test_event_stream_covers_the_campaign_lifecycle(tmp_path):
    store = str(tmp_path / "store")
    assert cli.main(["run", "--store", store, *RUN_FLAGS]) == 0

    events = read_events(events_path(store))
    assert isinstance(events[0], CampaignStarted)
    assert events[0].total_units == TOTAL_UNITS
    assert events[0].protocols == ("SPIN", "FED-FP")
    assert isinstance(events[-1], CampaignFinished)
    assert events[-1].completed == TOTAL_UNITS

    by_type = {}
    for event in events:
        by_type.setdefault(type(event), []).append(event)
    assert len(by_type[UnitStarted]) == TOTAL_UNITS
    assert len(by_type[UnitFinished]) == TOTAL_UNITS
    assert len(by_type[UnitTelemetry]) == TOTAL_UNITS
    assert len(by_type[SolveStats]) == TOTAL_UNITS
    assert {event.unit_id for event in by_type[UnitFinished]} == {
        event.unit_id for event in by_type[UnitStarted]
    }

    seqs = [record["seq"] for record, _ in iter_event_records(events_path(store))]
    assert seqs == list(range(len(seqs)))


def test_resume_appends_to_the_event_stream_with_fresh_seqs(tmp_path):
    store = str(tmp_path / "store")
    assert cli.main(["run", "--store", store, *RUN_FLAGS, "--max-units", "3"]) == 3
    first = [record for record, _ in iter_event_records(events_path(store))]
    assert cli.main(["resume", "--store", store, "--quiet"]) == 0
    records = [record for record, _ in iter_event_records(events_path(store))]
    assert records[: len(first)] == first
    seqs = [record["seq"] for record in records]
    assert seqs == list(range(len(seqs)))
    finished = [r for r in records if r["type"] == "unit_finished"]
    assert len(finished) == TOTAL_UNITS


#: ``profile`` output with all clocks frozen, floats normalised to ``#``
#: and the store path normalised to ``<store>`` — pinned byte-for-byte.
PROFILE_GOLDEN = """\
compute profile of <store>
units: 4 checkpointed, 4 with telemetry, #s total unit compute

time by phase
  analysis          #s    #%  (12 spans)
  generation        #s    #%  (8 spans)

time by protocol
  FED-FP            #s  (6 tests, max #s)
  SPIN              #s  (6 tests, max #s)

time by scenario
  m16-nr4_8-U#-pr#-N1_50-L50_100-v5_8-e#      #s  (2 units)
  m16-nr4_8-U2-pr#-N1_50-L50_100-v5_8-e#        #s  (2 units)

slowest units (top 3)
  m16-nr4_8-U#-pr#-N1_50-L50_100-v5_8-e#:p00      #s  (2 samples)
  m16-nr4_8-U#-pr#-N1_50-L50_100-v5_8-e#:p01      #s  (2 samples)
  m16-nr4_8-U2-pr#-N1_50-L50_100-v5_8-e#:p00        #s  (2 samples)

solver iterations per fixed point
        1 iterations        14   #%
        2 iterations         3   #%

counters
  generation.failures              2
  generation.tasksets              6
  solver.scalar.calls              17
  solver.scalar.converged          3
  solver.scalar.diverged           14
  solver.scalar.iterations         20
  tables.compile.hits              6
  tables.compile.misses            6
"""


def test_profile_output_matches_the_golden(tmp_path, monkeypatch, capsys):
    _freeze_clocks(monkeypatch)
    store = str(tmp_path / "store")
    assert cli.main(["run", "--store", store, *RUN_FLAGS]) == 0
    capsys.readouterr()
    assert cli.main(["profile", "--store", store, "--top", "3"]) == 0
    out = capsys.readouterr().out
    normalized = re.sub(r"\d+\.\d+", "#", out).replace(store, "<store>")
    assert normalized == PROFILE_GOLDEN


def test_profile_json_round_trips_the_merged_telemetry(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert cli.main(["run", "--store", store, *RUN_FLAGS]) == 0
    capsys.readouterr()
    assert cli.main(["profile", "--store", store, "--json"]) == 0
    profile = json.loads(capsys.readouterr().out)
    assert len(profile["units"]) == TOTAL_UNITS
    assert profile["units_with_telemetry"] == TOTAL_UNITS
    assert profile["event_counts"]["unit_telemetry"] == TOTAL_UNITS
    # Deterministic counters are pinned above; spot-check one here.
    assert profile["telemetry"]["counters"]["solver.scalar.calls"] == 17


def test_profile_of_a_telemetry_free_store_still_works(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert cli.main(["run", "--store", store, *RUN_FLAGS, "--no-telemetry"]) == 0
    capsys.readouterr()
    assert cli.main(["profile", "--store", store]) == 0
    out = capsys.readouterr().out
    assert "4 checkpointed, 0 with telemetry" in out
    assert "no events.jsonl in this store" in out


def test_profile_rejects_non_positive_top(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert cli.main(["run", "--store", store, *RUN_FLAGS]) == 0
    assert cli.main(["profile", "--store", store, "--top", "0"]) == 2
    assert "--top must be at least 1" in capsys.readouterr().err


def test_status_reports_dual_eta_and_the_event_stream(tmp_path, capsys):
    store = str(tmp_path / "store")
    rc = cli.main(
        ["run", "--store", store, *RUN_FLAGS, "--workers", "2", "--max-units", "3"]
    )
    assert rc == 3
    capsys.readouterr()
    assert cli.main(["status", "--store", store]) == 0
    out = capsys.readouterr().out
    assert "3/4 complete" in out
    assert "serial ETA:" in out and "(1 units left)" in out
    assert "parallel ETA:" in out and "at 2 workers (manifest)" in out
    assert "events:" in out and "events.jsonl" in out
    assert f"profile:        python -m repro.campaign profile --store {store}" in out


def test_status_of_a_complete_campaign_omits_etas_but_keeps_events(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert cli.main(["run", "--store", store, *RUN_FLAGS]) == 0
    capsys.readouterr()
    assert cli.main(["status", "--store", store]) == 0
    out = capsys.readouterr().out
    assert "4/4 complete" in out
    assert "ETA" not in out
    assert "events:" in out
