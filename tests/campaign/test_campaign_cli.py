"""End-to-end CLI tests: run, interrupt, resume, status, export, hash guard."""

from __future__ import annotations

import os

import pytest

from repro.campaign import cli
from repro.campaign.executor import build_protocols
from repro.experiments.figures import load_sweep_results
from repro.experiments.runner import SweepConfig, run_sweep
from repro.experiments.scenarios import figure2_scenarios

#: A cheap 2-scenario campaign: the two m=16 Fig. 2 scenarios on tiny DAGs.
RUN_FLAGS = [
    "--grid", "fig2",
    "--filter", "m=16",
    "--samples", "2",
    "--step", "0.5",
    "--vertices", "5,8",
    "--protocols", "SPIN,FED-FP",
    "--seed", "2020",
    "--quiet",
]
TOTAL_UNITS = 4  # 2 scenarios x 2 utilization points


def run_cli(*argv):
    return cli.main(list(argv))


def results_lines(store):
    with open(os.path.join(store, "results.jsonl"), "rb") as handle:
        return handle.readlines()


def test_run_interrupt_resume_leaves_finished_units_untouched(tmp_path, capsys):
    store = str(tmp_path / "store")

    # "Kill" the campaign after 3 of 4 units.
    assert run_cli("run", "--store", store, *RUN_FLAGS, "--max-units", "3") == 3
    checkpointed = results_lines(store)
    assert len(checkpointed) == 3

    assert run_cli("status", "--store", store) == 0
    assert "3/4 complete" in capsys.readouterr().out

    # Resume executes only the missing unit: the raw bytes (contents AND
    # completed_at timestamps) of the finished units' records are untouched.
    assert run_cli("resume", "--store", store, "--quiet") == 0
    final = results_lines(store)
    assert len(final) == TOTAL_UNITS
    assert final[:3] == checkpointed

    # Resuming a complete campaign executes nothing and rewrites nothing.
    assert run_cli("resume", "--store", store, "--quiet") == 0
    assert results_lines(store) == final


def test_parallel_cli_run_is_bit_identical_to_serial_run_sweep(tmp_path):
    store = str(tmp_path / "store")
    assert run_cli("run", "--store", store, *RUN_FLAGS, "--workers", "4") == 0

    [loaded_a, loaded_c] = load_sweep_results(store)
    config = SweepConfig(
        samples_per_point=2,
        utilization_step_fraction=0.5,
        seed=2020,
    )
    figures = figure2_scenarios(num_vertices_range=(5, 8))
    for loaded, key in ((loaded_a, "a"), (loaded_c, "c")):
        serial = run_sweep(
            figures[key], protocols=build_protocols(["SPIN", "FED-FP"]), config=config
        )
        assert loaded.scenario == serial.scenario
        for name in ("SPIN", "FED-FP"):
            assert loaded.curves[name].utilizations == serial.curves[name].utilizations
            assert loaded.curves[name].accepted == serial.curves[name].accepted
            assert loaded.curves[name].sampled == serial.curves[name].sampled
            assert (
                loaded.curves[name].generation_failures
                == serial.curves[name].generation_failures
            )


def test_rerun_with_mismatched_config_is_refused(tmp_path, capsys):
    store = str(tmp_path / "store")
    assert run_cli("run", "--store", store, *RUN_FLAGS, "--max-units", "1") == 3
    mismatched = [flag if flag != "2" else "5" for flag in RUN_FLAGS]
    assert run_cli("run", "--store", store, *mismatched) == 2
    assert "different campaign configuration" in capsys.readouterr().err
    # The original configuration still resumes fine.
    assert run_cli("run", "--store", store, *RUN_FLAGS) == 0


def test_export_writes_series_and_tables(tmp_path, capsys):
    store = str(tmp_path / "store")
    out = str(tmp_path / "out")
    assert run_cli("run", "--store", store, *RUN_FLAGS) == 0
    assert run_cli("export", "--store", store, "--out", out, "--strict") == 0
    files = sorted(os.listdir(out))
    assert "tables.txt" in files
    csvs = [name for name in files if name.endswith(".csv")]
    assert len(csvs) == 2
    with open(os.path.join(out, csvs[0])) as handle:
        header = handle.readline().strip()
    assert header == "utilization,normalized_utilization,SPIN,FED-FP,generation_failures"
    tables = open(os.path.join(out, "tables.txt")).read()
    assert "Dominance" in tables and "Outperformance" in tables


def test_export_of_partial_store_skips_incomplete_scenarios(tmp_path, capsys):
    store = str(tmp_path / "store")
    out = str(tmp_path / "out")
    assert run_cli("run", "--store", store, *RUN_FLAGS, "--max-units", "2") == 3
    assert run_cli("export", "--store", store, "--out", out) == 0
    assert "skipped 1 incomplete scenario" in capsys.readouterr().out
    assert len([n for n in os.listdir(out) if n.endswith(".csv")]) == 1
    # --strict refuses partial stores instead.
    assert run_cli("export", "--store", store, "--out", out, "--strict") == 2


def test_status_of_missing_store_fails_cleanly(tmp_path, capsys):
    assert run_cli("status", "--store", str(tmp_path / "nope")) == 2
    assert "holds no campaign" in capsys.readouterr().err


def test_cli_rejects_bad_arguments(tmp_path):
    with pytest.raises(SystemExit):
        run_cli("run", "--store", str(tmp_path), "--vertices", "oops")
    with pytest.raises(SystemExit):
        run_cli("run", "--store", str(tmp_path), "--protocols", "NOPE")
    assert (
        run_cli("run", "--store", str(tmp_path / "s"), *RUN_FLAGS, "--filter", "m=99")
        == 2
    )


def test_cli_rejects_duplicate_protocols_and_bad_step(tmp_path):
    with pytest.raises(SystemExit):
        run_cli("run", "--store", str(tmp_path / "s"), "--protocols", "SPIN,SPIN")
    # step <= 0 would loop forever in the planner; SweepConfig refuses it.
    assert (
        run_cli("run", "--store", str(tmp_path / "s"), *RUN_FLAGS, "--step", "0")
        == 2
    )


def test_cli_rejects_non_positive_limit(tmp_path):
    assert (
        run_cli("run", "--store", str(tmp_path / "s"), *RUN_FLAGS, "--limit", "-1")
        == 2
    )


def test_cli_simulate_mode_names_the_unsimulatable_protocol(tmp_path, capsys):
    # FED-FP is the only protocol left without runtime locking rules; the
    # simulate-mode rejection must name it (and only it) — SPIN and LPP
    # are part of the simulatable suite since the ProtocolBehavior refactor.
    flags = ["--grid", "fig2", "--filter", "m=16", "--samples", "1",
             "--step", "0.5", "--vertices", "5,8", "--seed", "2020",
             "--quiet", "--mode", "simulate"]
    code = run_cli("run", "--store", str(tmp_path / "s"), *flags,
                   "--protocols", "LPP,FED-FP")
    assert code == 2
    err = capsys.readouterr().err
    assert "FED-FP cannot be simulated" in err
    assert "LPP cannot" not in err
    assert "simulatable: DPCP-p-EP, DPCP-p-EN, SPIN, LPP" in err
