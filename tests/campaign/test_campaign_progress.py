"""Regression tests of the factored progress layer: the headless tracker's
ETA semantics and the printer's two output modes — most importantly that
non-TTY streams get full untruncated labels and no carriage returns."""

from __future__ import annotations

import io

from repro.campaign.executor import UnitResult
from repro.campaign.progress import (
    TTY_LABEL_WIDTH,
    ProgressPrinter,
    ProgressTracker,
)

#: A unit id longer than the TTY label field: truncating it loses data.
LONG_UNIT_ID = (
    "m16-nr8_8-U0.75-pr0.5-N1_3-L1_100-v50_100-e0.2:p07-and-then-some"
)
assert len(LONG_UNIT_ID) > TTY_LABEL_WIDTH


def _result(unit_id: str) -> UnitResult:
    return UnitResult(
        unit_id=unit_id,
        scenario_id=unit_id.split(":")[0],
        point_index=0,
        utilization=4.0,
    )


class _Clock:
    """A deterministic monotonic clock the tests advance by hand."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class _TTYStream(io.StringIO):
    """A StringIO that claims to be a terminal."""

    def isatty(self) -> bool:
        return True


# --------------------------------------------------------------------------- #
# ProgressTracker: the headless arithmetic the service reuses
# --------------------------------------------------------------------------- #
def test_eta_is_unknown_before_the_first_executed_unit():
    tracker = ProgressTracker(total=4, clock=_Clock())
    assert tracker.eta_seconds() is None
    tracker.update(1, 4, restored=True)
    # Restored units carry no timing signal: the ETA stays unknown.
    assert tracker.eta_seconds() is None


def test_eta_extrapolates_executed_unit_cost_only():
    clock = _Clock()
    tracker = ProgressTracker(total=4, clock=clock)
    tracker.update(1, 4, restored=True)  # replayed from the store: free
    clock.now += 10.0
    tracker.update(2, 4)  # one executed unit took 10s
    assert tracker.eta_seconds() == 20.0  # two remaining at 10s apiece
    assert tracker.rate() == 0.1
    clock.now += 10.0
    tracker.update(3, 4)
    assert tracker.eta_seconds() == 10.0


def test_eta_is_zero_once_nothing_remains():
    clock = _Clock()
    tracker = ProgressTracker(total=1, clock=clock)
    clock.now += 2.0
    tracker.update(1, 1)
    assert tracker.eta_seconds() == 0.0
    assert tracker.percent == 100.0
    assert tracker.remaining == 0


def test_plain_line_keeps_the_full_label():
    clock = _Clock()
    tracker = ProgressTracker(total=8, clock=clock)
    clock.now += 4.0
    tracker.update(2, 8)
    line = tracker.line(LONG_UNIT_ID)
    assert LONG_UNIT_ID in line  # verbatim: no padding, no truncation
    assert line.startswith("[2/8]")
    assert " 25.0%" in line
    assert "\r" not in line


# --------------------------------------------------------------------------- #
# ProgressPrinter: non-TTY output is plain, periodic, and untruncated
# --------------------------------------------------------------------------- #
def test_non_tty_output_has_full_labels_and_no_carriage_returns():
    stream = io.StringIO()  # isatty() -> False
    printer = ProgressPrinter(stream=stream)
    assert not printer.interactive
    printer(1, 2, _result(LONG_UNIT_ID))
    printer(2, 2, _result("tiny:p00"))
    printer.finish()
    out = stream.getvalue()
    # The regression this file exists for: CI logs used to get unit ids
    # silently cut to the TTY field width and interleaved with \r redraws.
    assert LONG_UNIT_ID in out
    assert "\r" not in out
    lines = [line for line in out.splitlines() if line]
    assert all(line.startswith("[") for line in lines)
    # finish() adds nothing on plain streams (no dangling redraw to end).
    assert out.endswith("\n")


def test_non_tty_output_is_rate_limited_but_always_prints_the_last_unit():
    stream = io.StringIO()
    printer = ProgressPrinter(stream=stream)
    for done in range(1, 10):
        printer(done, 10, _result(f"unit:p{done:02d}"))
    printer(10, 10, _result("unit:p10"))
    lines = stream.getvalue().splitlines()
    # Burst updates collapse onto the interval: the first callback prints,
    # the following sub-interval ones are swallowed, the final one always
    # lands so logs end on the true completion state.
    assert lines[0].startswith("[1/10]")
    assert lines[-1].startswith("[10/10]")
    assert len(lines) == 2


def test_tty_output_redraws_in_place_with_the_classic_fixed_field():
    stream = _TTYStream()
    printer = ProgressPrinter(stream=stream)
    assert printer.interactive
    printer(1, 2, _result(LONG_UNIT_ID))
    printer(2, 2, _result("tiny:p00"))
    printer.finish()
    out = stream.getvalue()
    # In-place redraw: every status line is preceded by a carriage return
    # and the label is padded/truncated to the fixed field so the next
    # redraw cleanly overwrites it.
    assert out.count("\r") == 2
    assert LONG_UNIT_ID[:TTY_LABEL_WIDTH] in out
    assert LONG_UNIT_ID not in out
    padded = f"{'tiny:p00':<{TTY_LABEL_WIDTH}s}"
    assert padded in out
    assert out.endswith("\n")  # finish() terminates the status line


def test_restored_units_are_labelled_as_such_on_plain_streams():
    stream = io.StringIO()
    printer = ProgressPrinter(stream=stream)
    printer(1, 2, None)  # the executor passes result=None for restores
    out = stream.getvalue()
    assert "(restored from store)" in out
    assert "eta ?" in out  # restores carry no timing signal
