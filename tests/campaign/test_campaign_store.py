"""Tests for the on-disk campaign store: checkpoints, resume, hash guard."""

from __future__ import annotations

import json

import pytest

from repro.campaign.planner import campaign_manifest, plan_campaign
from repro.campaign.store import (
    CampaignStore,
    ConfigMismatchError,
    StoreError,
)
from repro.experiments.runner import SweepConfig
from repro.experiments.scenarios import Scenario


@pytest.fixture
def scenario():
    return Scenario(
        platform_size=8,
        resource_count_range=(2, 3),
        average_utilization=1.5,
        access_probability=0.5,
        request_count_range=(1, 5),
        cs_length_range=(15.0, 50.0),
        num_vertices_range=(6, 10),
    )


@pytest.fixture
def manifest(scenario):
    plan = plan_campaign(
        [scenario],
        SweepConfig(samples_per_point=2, utilization_step_fraction=0.5, seed=11),
        ["SPIN"],
    )
    return campaign_manifest(plan)


def record(unit_id, accepted=1):
    return {
        "unit_id": unit_id,
        "scenario_id": "s",
        "point_index": 0,
        "utilization": 4.0,
        "accepted": {"SPIN": accepted},
        "evaluated": 2,
        "generation_failures": 0,
        "elapsed_seconds": 0.1,
    }


def test_initialize_append_load_roundtrip(tmp_path, manifest):
    store = CampaignStore(str(tmp_path / "store"))
    assert not store.exists()
    store.initialize(manifest)
    assert store.exists()
    assert store.read_manifest()["config_hash"] == manifest["config_hash"]

    store.append(record("u1"))
    store.append(record("u2", accepted=0))
    records = store.load_records()
    assert set(records) == {"u1", "u2"}
    assert records["u1"]["accepted"] == {"SPIN": 1}
    assert "completed_at" in records["u1"]
    assert store.completed_ids() == {"u1", "u2"}
    assert store.pending_ids(["u1", "u2", "u3"]) == {"u3"}


def test_duplicate_records_keep_the_first(tmp_path, manifest):
    store = CampaignStore(str(tmp_path))
    store.initialize(manifest)
    store.append(record("u1", accepted=1))
    store.append(record("u1", accepted=2))
    assert store.load_records()["u1"]["accepted"] == {"SPIN": 1}


def test_torn_trailing_line_is_ignored(tmp_path, manifest):
    store = CampaignStore(str(tmp_path))
    store.initialize(manifest)
    store.append(record("u1"))
    with open(store.results_path, "a") as handle:
        handle.write('{"unit_id": "u2", "accepted": {"SP')  # killed mid-write
    assert set(store.load_records()) == {"u1"}


def test_append_after_a_torn_line_heals_it_and_loses_no_record(tmp_path, manifest):
    store = CampaignStore(str(tmp_path))
    store.initialize(manifest)
    store.append(record("u1"))
    with open(store.results_path, "a") as handle:
        handle.write('{"unit_id": "u2", "accepted": {"SP')  # killed mid-write
    # The resume path appends the re-executed unit: it must not merge into
    # the torn line (which would silently discard it).
    store.append(record("u2", accepted=0))
    records = store.load_records()
    assert set(records) == {"u1", "u2"}
    assert records["u2"]["accepted"] == {"SPIN": 0}
    # And the incremental reader walks straight through the healed junk line.
    assert [r["unit_id"] for r, _ in store.iter_records()] == ["u1", "u2"]


def test_config_mismatch_is_refused(tmp_path, manifest, scenario):
    store = CampaignStore(str(tmp_path))
    store.initialize(manifest)
    other_plan = plan_campaign(
        [scenario],
        SweepConfig(samples_per_point=5, utilization_step_fraction=0.5, seed=11),
        ["SPIN"],
    )
    other_manifest = campaign_manifest(other_plan)
    with pytest.raises(ConfigMismatchError):
        store.initialize(other_manifest)
    # The matching manifest still opens fine.
    store.initialize(manifest)


def test_missing_and_corrupt_manifests(tmp_path, manifest):
    store = CampaignStore(str(tmp_path / "nowhere"))
    with pytest.raises(StoreError):
        store.read_manifest()

    tampered_dir = tmp_path / "tampered"
    store = CampaignStore(str(tampered_dir))
    store.initialize(manifest)
    with open(store.manifest_path) as handle:
        data = json.load(handle)
    data["sweep_config"]["samples_per_point"] = 999  # silent edit, stale hash
    with open(store.manifest_path, "w") as handle:
        json.dump(data, handle)
    with pytest.raises(ConfigMismatchError):
        store.read_manifest()


def test_foreign_or_future_manifests_are_refused(tmp_path, manifest):
    store = CampaignStore(str(tmp_path / "future"))
    store.initialize(manifest)
    with open(store.manifest_path) as handle:
        data = json.load(handle)
    data["format_version"] = 999
    with open(store.manifest_path, "w") as handle:
        json.dump(data, handle)
    with pytest.raises(StoreError, match="format"):
        store.read_manifest()

    foreign_dir = tmp_path / "foreign"
    foreign_dir.mkdir()
    with open(foreign_dir / "manifest.json", "w") as handle:
        json.dump({"name": "some other tool"}, handle)
    with pytest.raises(StoreError):  # not a raw KeyError
        CampaignStore(str(foreign_dir)).read_manifest()


def test_manifest_versions_are_checked_per_mode(tmp_path, scenario):
    """Simulate stores version independently of analyze stores.

    A pre-refactor simulate store (old ``FORMAT_VERSION`` stamp) must be
    refused, while an analyze store carrying that same number — the
    version still in force for its mode — keeps loading.
    """
    from repro.campaign.planner import (
        FORMAT_VERSION,
        MODE_SIMULATE,
        SIMULATE_FORMAT_VERSION,
    )

    sweep = SweepConfig(samples_per_point=2, utilization_step_fraction=0.5, seed=11)
    simulate_manifest = campaign_manifest(
        plan_campaign([scenario], sweep, mode=MODE_SIMULATE)
    )
    assert simulate_manifest["format_version"] == SIMULATE_FORMAT_VERSION

    store = CampaignStore(str(tmp_path / "old-simulate"))
    store.initialize(simulate_manifest)
    with open(store.manifest_path) as handle:
        data = json.load(handle)
    data["format_version"] = FORMAT_VERSION  # pre-refactor simulate stamp
    with open(store.manifest_path, "w") as handle:
        json.dump(data, handle)
    with pytest.raises(StoreError, match="simulate"):
        store.read_manifest()

    analyze_manifest = campaign_manifest(plan_campaign([scenario], sweep, ["SPIN"]))
    assert analyze_manifest["format_version"] == FORMAT_VERSION
    analyze_store = CampaignStore(str(tmp_path / "analyze"))
    analyze_store.initialize(analyze_manifest)
    assert analyze_store.read_manifest()["format_version"] == FORMAT_VERSION
