"""Shard planning and store-merge tests, including the CLI round trip."""

from __future__ import annotations

import json
import os

import pytest

from repro.campaign import cli
from repro.campaign.merge import (
    MergeConflictError,
    MergeError,
    merge_stores,
)
from repro.campaign.planner import (
    manifest_shard,
    plan_campaign,
    shard_units,
)
from repro.campaign.store import CampaignStore, ConfigMismatchError
from repro.experiments.runner import SweepConfig
from repro.experiments.scenarios import Scenario

RUN_FLAGS = [
    "--grid", "fig2",
    "--filter", "m=16",
    "--samples", "2",
    "--step", "0.5",
    "--vertices", "5,8",
    "--protocols", "SPIN,FED-FP",
    "--seed", "2020",
    "--quiet",
]
TOTAL_UNITS = 4  # 2 scenarios x 2 utilization points


def run_cli(*argv):
    return cli.main(list(argv))


def payload_lines(store):
    """results.jsonl records in file order, volatile fields stripped."""
    path = os.path.join(store, "results.jsonl")
    with open(path) as handle:
        return [
            {
                key: value
                for key, value in json.loads(line).items()
                if key not in ("completed_at", "elapsed_seconds")
            }
            for line in handle
        ]


@pytest.fixture(scope="module")
def plan():
    scenario = Scenario(
        platform_size=8,
        resource_count_range=(2, 3),
        average_utilization=1.5,
        access_probability=0.5,
        request_count_range=(1, 5),
        cs_length_range=(15.0, 50.0),
        num_vertices_range=(6, 10),
    )
    config = SweepConfig(
        samples_per_point=2, utilization_step_fraction=0.25, seed=7
    )
    return plan_campaign([scenario], config, ["SPIN"])


# --------------------------------------------------------------------------- #
# Shard planning
# --------------------------------------------------------------------------- #
def test_shards_partition_the_plan(plan):
    shards = [shard_units(plan.units, i, 3) for i in range(3)]
    ids = [unit.unit_id for shard in shards for unit in shard]
    assert sorted(ids) == sorted(unit.unit_id for unit in plan.units)
    assert len(set(ids)) == len(ids)
    # Deterministic: the same slice comes back every time.
    assert [u.unit_id for u in shard_units(plan.units, 1, 3)] == [
        u.unit_id for u in shards[1]
    ]


def test_shard_validation(plan):
    with pytest.raises(ValueError):
        shard_units(plan.units, 0, 0)
    with pytest.raises(ValueError):
        shard_units(plan.units, 3, 3)
    with pytest.raises(ValueError):
        shard_units(plan.units, -1, 3)


def test_shard_spec_lives_outside_the_config_hash(plan):
    from repro.campaign.planner import campaign_manifest

    unsharded = campaign_manifest(plan)
    sharded = campaign_manifest(plan, shard=(1, 4))
    assert sharded["config_hash"] == unsharded["config_hash"]
    assert manifest_shard(sharded) == (1, 4)
    assert manifest_shard(unsharded) is None


def test_store_refuses_a_different_shard_spec(tmp_path, plan):
    from repro.campaign.planner import campaign_manifest

    store = CampaignStore(str(tmp_path / "store"))
    store.initialize(campaign_manifest(plan, shard=(0, 2)))
    with pytest.raises(ConfigMismatchError, match="shard"):
        store.initialize(campaign_manifest(plan, shard=(1, 2)))
    with pytest.raises(ConfigMismatchError, match="unsharded"):
        store.initialize(campaign_manifest(plan))


# --------------------------------------------------------------------------- #
# Merge semantics (CLI round trip)
# --------------------------------------------------------------------------- #
def test_sharded_run_plus_merge_matches_the_serial_store(tmp_path):
    serial = str(tmp_path / "serial")
    assert run_cli("run", "--store", serial, *RUN_FLAGS) == 0

    shards = []
    for index in range(2):
        shard_store = str(tmp_path / f"s{index}")
        shards.append(shard_store)
        assert (
            run_cli(
                "run", "--store", shard_store,
                "--shard", f"{index}/2", *RUN_FLAGS,
            )
            == 0
        )

    merged = str(tmp_path / "merged")
    assert run_cli("merge", *shards, "--into", merged) == 0
    # Same records, same plan order — the merged store is
    # indistinguishable from one uninterrupted serial run.
    assert payload_lines(merged) == payload_lines(serial)
    assert manifest_shard(CampaignStore(merged).read_manifest()) is None
    assert run_cli("report", "--store", merged) == 0
    assert run_cli("status", "--store", merged) == 0

    # Merging is idempotent: a re-merge writes nothing new.
    assert run_cli("merge", *shards, "--into", merged) == 0
    assert payload_lines(merged) == payload_lines(serial)


def test_merge_of_incomplete_shards_returns_3_and_is_resumable(
    tmp_path, capsys
):
    s0 = str(tmp_path / "s0")
    assert run_cli("run", "--store", s0, "--shard", "0/2", *RUN_FLAGS) == 0
    merged = str(tmp_path / "merged")
    assert run_cli("merge", s0, "--into", merged) == 3
    assert "incomplete" in capsys.readouterr().out
    # The merged store is an ordinary store: resume completes it.
    assert run_cli("resume", "--store", merged, "--quiet") == 0
    serial = str(tmp_path / "serial")
    assert run_cli("run", "--store", serial, *RUN_FLAGS) == 0
    assert sorted(
        json.dumps(p, sort_keys=True) for p in payload_lines(merged)
    ) == sorted(json.dumps(p, sort_keys=True) for p in payload_lines(serial))


def test_merge_refuses_mismatched_campaigns(tmp_path, capsys):
    a = str(tmp_path / "a")
    b = str(tmp_path / "b")
    assert run_cli("run", "--store", a, *RUN_FLAGS) == 0
    other = [flag if flag != "2020" else "2021" for flag in RUN_FLAGS]
    assert run_cli("run", "--store", b, *other) == 0
    assert run_cli("merge", a, b, "--into", str(tmp_path / "m")) == 2
    assert "different campaign" in capsys.readouterr().err


def test_merge_refuses_destination_among_sources(tmp_path, capsys):
    a = str(tmp_path / "a")
    assert run_cli("run", "--store", a, *RUN_FLAGS) == 0
    assert run_cli("merge", a, "--into", a) == 2
    assert "also a merge source" in capsys.readouterr().err


def test_merge_detects_conflicting_duplicate_records(tmp_path):
    a = str(tmp_path / "a")
    b = str(tmp_path / "b")
    assert run_cli("run", "--store", a, *RUN_FLAGS) == 0
    assert run_cli("run", "--store", b, *RUN_FLAGS) == 0
    # Corrupt one record of store b: same unit id, different payload.
    path = os.path.join(b, "results.jsonl")
    with open(path) as handle:
        lines = [json.loads(line) for line in handle]
    lines[0]["evaluated"] += 1
    with open(path, "w") as handle:
        for record in lines:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    with pytest.raises(MergeConflictError, match="differs between"):
        merge_stores([a, b], str(tmp_path / "m"))


def test_merge_requires_sources():
    with pytest.raises(MergeError, match="no source stores"):
        merge_stores([], "anywhere")


def test_merge_heals_quarantine_records_completed_elsewhere(tmp_path):
    s0 = str(tmp_path / "s0")
    s1 = str(tmp_path / "s1")
    assert run_cli("run", "--store", s0, "--shard", "0/2", *RUN_FLAGS) == 0
    assert run_cli("run", "--store", s1, "--shard", "1/2", *RUN_FLAGS) == 0
    completed_in_s1 = next(iter(CampaignStore(s1).load_records()))
    # Pretend the unit failed on shard 0's host before shard 1 finished it.
    CampaignStore(s0).append_quarantine(
        {
            "unit_id": completed_in_s1,
            "outcome": "error",
            "error_kind": "worker_crash",
            "error_message": "host died",
            "attempts": 3,
        }
    )
    merged = str(tmp_path / "merged")
    report = merge_stores([s0, s1], merged)
    assert report.healed == 1
    assert report.quarantined == 0
    assert report.complete
    assert CampaignStore(merged).unresolved_quarantine() == {}


def test_merge_carries_unresolved_quarantine_and_returns_3(tmp_path, capsys):
    s0 = str(tmp_path / "s0")
    s1 = str(tmp_path / "s1")
    assert run_cli("run", "--store", s0, "--shard", "0/2", *RUN_FLAGS) == 0
    assert run_cli("run", "--store", s1, "--shard", "1/2", *RUN_FLAGS) == 0
    # A unit of shard 0 was quarantined and never completed anywhere:
    # fake it by removing its record and adding a quarantine entry.
    store = CampaignStore(s0)
    records = store.load_records()
    victim = sorted(records)[0]
    with open(store.results_path, "w") as handle:
        for unit_id, record in records.items():
            if unit_id != victim:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
    store.append_quarantine(
        {
            "unit_id": victim,
            "outcome": "error",
            "error_kind": "RuleViolation",
            "error_message": "boom",
            "attempts": 3,
        }
    )
    merged = str(tmp_path / "merged")
    assert run_cli("merge", s0, s1, "--into", merged) == 3
    out = capsys.readouterr().out
    assert "still quarantined" in out
    assert set(CampaignStore(merged).unresolved_quarantine()) == {victim}
    # Quarantined units surface in the rendered report too.
    assert run_cli("report", "--store", merged) == 3
    report_md = os.path.join(merged, "report", "REPORT.md")
    with open(report_md) as handle:
        text = handle.read()
    assert "Quarantined units" in text
    assert victim in text
