"""Tests for the work-unit planner: seeds, manifests, scenario selection."""

from __future__ import annotations

import pytest

from repro.campaign.planner import (
    CampaignPlan,
    campaign_manifest,
    config_hash,
    grid_scenarios,
    parse_filter,
    plan_campaign,
    plan_from_manifest,
    plan_scenario_units,
    scenario_from_dict,
    scenario_to_dict,
    select_scenarios,
)
from repro.experiments.runner import SweepConfig
from repro.experiments.scenarios import Scenario, full_grid
from repro.utils.rng import ensure_rng, spawn_rngs


@pytest.fixture
def scenario():
    return Scenario(
        platform_size=8,
        resource_count_range=(2, 3),
        average_utilization=1.5,
        access_probability=0.5,
        request_count_range=(1, 5),
        cs_length_range=(15.0, 50.0),
        num_vertices_range=(6, 10),
    )


@pytest.fixture
def config():
    return SweepConfig(samples_per_point=3, utilization_step_fraction=0.25, seed=7)


# --------------------------------------------------------------------------- #
# Unit planning and seed derivation
# --------------------------------------------------------------------------- #
def test_plan_scenario_units_one_per_point(scenario, config):
    units = plan_scenario_units(scenario, config)
    points = scenario.utilization_points(config.utilization_step_fraction)
    assert [u.utilization for u in units] == points
    assert [u.point_index for u in units] == list(range(len(points)))
    assert all(u.samples_per_point == 3 for u in units)
    assert len({u.unit_id for u in units}) == len(units)


def test_unit_seeds_are_deterministic_and_match_serial_spawning(scenario, config):
    units_a = plan_scenario_units(scenario, config)
    units_b = plan_scenario_units(scenario, config)
    assert [u.seed for u in units_a] == [u.seed for u in units_b]
    # The per-unit seeds regenerate exactly the per-point generators the
    # serial sweep would spawn from the campaign seed.
    point_rngs = spawn_rngs(ensure_rng(config.seed), len(units_a))
    for unit, rng in zip(units_a, point_rngs):
        expected = rng.integers(0, 2**31, size=4)
        observed = ensure_rng(unit.seed).integers(0, 2**31, size=4)
        assert list(expected) == list(observed)


def test_plan_campaign_rejects_duplicates_and_empty(scenario, config):
    with pytest.raises(ValueError):
        plan_campaign([scenario, scenario], config)
    with pytest.raises(ValueError):
        plan_campaign([], config)


def test_plan_campaign_units_are_scenario_major(scenario, config):
    from dataclasses import replace

    other = replace(scenario, access_probability=0.75)
    plan = plan_campaign([scenario, other], config, ["SPIN"])
    assert len(plan.units) == 8
    assert plan.units[0].scenario == scenario
    assert plan.units[4].scenario == other


# --------------------------------------------------------------------------- #
# Manifest round trips and hashing
# --------------------------------------------------------------------------- #
def test_scenario_dict_roundtrip(scenario):
    assert scenario_from_dict(scenario_to_dict(scenario)) == scenario


def test_manifest_roundtrip_preserves_units(scenario, config):
    plan = plan_campaign([scenario], config, ["SPIN", "FED-FP"])
    manifest = campaign_manifest(plan)
    rebuilt = plan_from_manifest(manifest)
    assert isinstance(rebuilt, CampaignPlan)
    assert rebuilt.protocol_names == ["SPIN", "FED-FP"]
    assert [u.unit_id for u in rebuilt.units] == [u.unit_id for u in plan.units]
    assert [u.seed for u in rebuilt.units] == [u.seed for u in plan.units]


def test_config_hash_ignores_cosmetic_fields_but_not_config(scenario, config):
    plan = plan_campaign([scenario], config, ["SPIN"])
    manifest = campaign_manifest(plan)
    cosmetic = dict(manifest, created_at="2020-07-20T00:00:00Z")
    assert config_hash(cosmetic) == manifest["config_hash"]

    changed = plan_campaign(
        [scenario],
        SweepConfig(samples_per_point=4, utilization_step_fraction=0.25, seed=7),
        ["SPIN"],
    )
    assert campaign_manifest(changed)["config_hash"] != manifest["config_hash"]


def test_manifest_requires_concrete_seed(scenario):
    config = SweepConfig(seed=None)
    plan = plan_campaign([scenario], config, ["SPIN"])
    with pytest.raises(ValueError):
        campaign_manifest(plan)


# --------------------------------------------------------------------------- #
# Scenario selection
# --------------------------------------------------------------------------- #
def test_parse_filter_understands_all_keys():
    criteria = parse_filter("m=16, pr=0.5, U=1.5, nr=4-8, N=50, L=50-100")
    assert criteria["m"] == 16
    assert criteria["pr"] == 0.5
    assert criteria["U"] == 1.5
    assert criteria["nr"] == (4.0, 8.0)
    assert criteria["N"] == 50
    assert criteria["L"] == (50.0, 100.0)


def test_parse_filter_rejects_unknown_keys_and_bad_terms():
    with pytest.raises(ValueError):
        parse_filter("bogus=1")
    with pytest.raises(ValueError):
        parse_filter("m16")


def test_select_scenarios_filters_the_grid():
    grid = full_grid()
    slice_ = select_scenarios(grid, "m=16,pr=0.5")
    assert len(slice_) == 216 // (3 * 3)
    assert all(s.platform_size == 16 and s.access_probability == 0.5 for s in slice_)
    narrow = select_scenarios(grid, "m=16,pr=0.5,nr=4-8,U=1.5,N=50,L=50-100")
    assert len(narrow) == 1
    assert select_scenarios(grid, None) == grid


def test_grid_scenarios_named_grids():
    assert len(grid_scenarios("full")) == 216
    fig2 = grid_scenarios("fig2", num_vertices_range=(5, 10))
    assert len(fig2) == 4
    assert all(s.num_vertices_range == (5, 10) for s in fig2)
    with pytest.raises(ValueError):
        grid_scenarios("fig3")


def test_scenarios_differing_only_in_dag_shape_are_distinct(scenario, config):
    from dataclasses import replace

    other = replace(scenario, num_vertices_range=(5, 10))
    assert scenario.scenario_id != other.scenario_id
    plan = plan_campaign([scenario, other], config)
    assert len(plan.units) == 2 * len(plan_scenario_units(scenario, config))


def test_empty_sweeps_are_rejected_at_planning_time(scenario):
    import pytest

    from repro.experiments.runner import SweepConfig

    with pytest.raises(ValueError, match="fraction"):
        SweepConfig(utilization_step_fraction=1.5)
    with pytest.raises(ValueError):
        scenario.utilization_points(-1)


def test_scenario_id_covers_request_count_lower_bound(scenario):
    from dataclasses import replace

    assert scenario.scenario_id != replace(scenario, request_count_range=(2, 5)).scenario_id
