#!/usr/bin/env python3
"""Validate WCRT bounds by simulation — the 20-line version.

Runs a tiny fixed-seed simulate-mode campaign (one Fig. 2 scenario) over
the whole simulatable baseline suite — DPCP-p-EP, DPCP-p-EN, SPIN, and
LPP, each under its own runtime locking rules — and prints the worst
observed/bound ratio per protocol.  Zero violations and every ratio <= 1
is the expected outcome; see docs/validation.md.

Run with:  PYTHONPATH=src python examples/validate_bounds.py
"""

from repro.campaign import cli
from repro.report.aggregate import aggregate_store

STORE = "runs/validate-demo"


def main() -> None:
    assert cli.main([
        "run", "--store", STORE, "--mode", "simulate",
        "--grid", "fig2", "--filter", "m=16,U=1.5",
        "--samples", "2", "--step", "0.25", "--vertices", "5,8",
        "--seed", "2020", "--sim-max-events", "150000", "--quiet",
    ]) == 0
    for protocol, rollup in aggregate_store(STORE).validation_totals().items():
        worst = rollup.ratio.maximum
        print(f"{protocol}: {rollup.simulated} accepted task sets simulated, "
              f"worst observed/bound = "
              f"{'n/a' if worst is None else format(worst, '.3f')}, "
              f"{rollup.violations} soundness violations")


if __name__ == "__main__":
    main()
