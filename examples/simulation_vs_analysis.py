#!/usr/bin/env python3
"""Validate the DPCP-p analysis against the runtime simulator.

Generates random task sets, analyses them with the DPCP-p-EP test, simulates
the resulting partition for a few hyperperiods, and reports the gap between
the observed response times and the analytical WCRT bounds.  The observed
values must never exceed the bounds; the gap illustrates the (expected)
pessimism of the analysis.

Run with:  python examples/simulation_vs_analysis.py
"""

from __future__ import annotations

from repro.analysis import DpcpPEpTest
from repro.generation import (
    DagGenerationConfig,
    ResourceGenerationConfig,
    TaskSetGenerationConfig,
    generate_taskset,
)
from repro.model import Platform
from repro.sim import DpcpPSimulator


def main() -> None:
    config = TaskSetGenerationConfig(
        average_utilization=1.5,
        dag=DagGenerationConfig(num_vertices_range=(6, 12), edge_probability=0.2),
        resources=ResourceGenerationConfig(
            num_resources_range=(2, 4),
            access_probability=0.7,
            request_count_range=(1, 5),
            cs_length_range=(20.0, 60.0),
        ),
    )
    platform = Platform(16)
    analysis = DpcpPEpTest()

    analysed = 0
    for seed in range(40):
        taskset = generate_taskset(4.5, config, rng=seed)
        result = analysis.test(taskset, platform)
        if not result.schedulable:
            continue
        analysed += 1
        simulator = DpcpPSimulator(result.partition)
        simulator.release_periodic_jobs(3 * max(t.period for t in taskset))
        trace = simulator.run()

        print(f"task set #{seed} ({len(taskset)} tasks)")
        for task in taskset:
            bound = result.task_analyses[task.task_id].wcrt
            observed = trace.worst_response_time(task.task_id)
            if observed is None:
                continue
            assert observed <= bound + 1e-6, "analysis bound violated!"
            print(
                f"  {task.name}: observed R = {observed/1e3:8.2f} ms, "
                f"analytical bound = {bound/1e3:8.2f} ms, "
                f"ratio = {observed / bound:5.2f}"
            )
        problems = trace.check_all()
        print(f"  invariants: {'all hold' if not problems else problems}")
        print()
        if analysed >= 5:
            break

    if analysed == 0:
        print("no schedulable task set found — try different seeds")


if __name__ == "__main__":
    main()
