#!/usr/bin/env python3
"""Mini dominance/outperformance study (scaled-down Tables 2 and 3).

Runs utilization sweeps for a handful of scenarios spanning light and heavy
resource contention, then prints the pairwise dominance and outperformance
statistics in the format of the paper's Tables 2 and 3.  The full 216-scenario
grid lives in benchmarks/bench_tables.py.

Run with:  python examples/protocol_comparison.py
"""

from __future__ import annotations

from repro.experiments import (
    Scenario,
    SweepConfig,
    pairwise_statistics,
    render_dominance_table,
    render_outperformance_table,
    run_campaign,
    weighted_acceptance,
)


def scenarios() -> list:
    """Four contrasting corners of the parameter grid (small DAGs for speed)."""
    common = dict(num_vertices_range=(8, 20))
    return [
        Scenario(16, (2, 4), 1.5, 0.5, (1, 25), (15.0, 50.0), **common),
        Scenario(16, (4, 8), 1.5, 0.75, (1, 25), (50.0, 100.0), **common),
        Scenario(32, (4, 8), 2.0, 0.5, (1, 25), (15.0, 50.0), **common),
        Scenario(32, (8, 16), 1.5, 1.0, (1, 50), (50.0, 100.0), **common),
    ]


def main() -> None:
    config = SweepConfig(samples_per_point=4, utilization_step_fraction=0.1, seed=7)
    print("Running 4 scenario sweeps (this takes a minute or two)...")
    results = run_campaign(scenarios(), config=config)

    overall = weighted_acceptance(
        [curve for result in results for curve in result.curves.values()]
    )
    print("\nOverall acceptance ratio per protocol")
    for protocol, ratio in sorted(overall.items(), key=lambda kv: -kv[1]):
        print(f"  {protocol:12s} {ratio:6.3f}")

    stats = pairwise_statistics(results)
    print()
    print(render_dominance_table(stats))
    print()
    print(render_outperformance_table(stats))


if __name__ == "__main__":
    main()
