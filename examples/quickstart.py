#!/usr/bin/env python3
"""Quickstart: generate a parallel task set and test it under every protocol.

This walks through the library's core workflow:

1. generate a synthetic DAG task set (Sec. VII-A parameters),
2. run the DPCP-p schedulability test (EP and EN analyses) and the baselines,
3. inspect the resulting partition and per-task response-time bounds.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import default_protocols
from repro.generation import (
    DagGenerationConfig,
    ResourceGenerationConfig,
    TaskSetGenerationConfig,
    generate_taskset,
)
from repro.model import Platform


def main() -> None:
    config = TaskSetGenerationConfig(
        average_utilization=1.5,
        dag=DagGenerationConfig(num_vertices_range=(10, 30), edge_probability=0.1),
        resources=ResourceGenerationConfig(
            num_resources_range=(4, 8),
            access_probability=0.5,
            request_count_range=(1, 10),
            cs_length_range=(15.0, 50.0),
        ),
    )
    taskset = generate_taskset(total_utilization=6.0, config=config, rng=2020)
    platform = Platform(16)

    print("Generated task set")
    print("==================")
    for task in taskset:
        print(
            f"  {task.name}: |V|={len(task.vertices)}, C={task.wcet/1e3:.2f} ms, "
            f"T=D={task.period/1e3:.2f} ms, U={task.utilization:.2f}, "
            f"L*={task.critical_path_length/1e3:.2f} ms, "
            f"resources={task.used_resources()}"
        )
    print(f"  global resources: {taskset.global_resources()}")
    print(f"  local resources:  {taskset.local_resources()}")
    print()

    print(f"Schedulability on m={platform.num_processors} processors")
    print("=" * 50)
    for protocol in default_protocols():
        result = protocol.test(taskset, platform)
        verdict = "schedulable" if result.schedulable else "NOT schedulable"
        print(f"\n{protocol.name}: {verdict}")
        if result.reason:
            print(f"  reason: {result.reason}")
        if result.partition is not None:
            for task in taskset:
                analysis = result.task_analyses.get(task.task_id)
                if analysis is None:
                    continue
                print(
                    f"  {task.name}: R={analysis.wcrt/1e3:.2f} ms "
                    f"(D={task.deadline/1e3:.2f} ms), m_i={analysis.processors}"
                )
            if result.partition.resource_assignment:
                print(f"  resource placement: {result.partition.resource_assignment}")


if __name__ == "__main__":
    main()
