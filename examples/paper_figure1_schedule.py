#!/usr/bin/env python3
"""Replay the paper's Fig. 1 example schedule with the runtime simulator.

Two DAG tasks share a global resource ℓ1 (hosted on processor 1) and task τi
additionally uses a local resource ℓ2.  The simulator reproduces the protocol
behaviours described in Sec. III-C:

* the request ℛ_{j,1} locks ℓ1 at t = 1 and releases it at t = 4;
* v_{i,2}'s request ℛ_{i,1} is issued at t = 2, waits in SQ^G, is granted at
  t = 4 and finishes at t = 7 while v_{i,2} stays suspended;
* v_{i,3} holds ℓ2 during [2, 4] and v_{i,4} waits until then.

Run with:  python examples/paper_figure1_schedule.py
"""

from __future__ import annotations

from repro.sim import DpcpPSimulator, build_figure1_system


def main() -> None:
    partition, behaviors = build_figure1_system()
    taskset = partition.taskset

    print("Fig. 1 system")
    print("=============")
    for task in taskset:
        print(
            f"  {task.name}: C={task.wcet:g}, L*={task.critical_path_length:g}, "
            f"cluster={partition.processors_of(task.task_id)}"
        )
    print(f"  global resource l1 hosted on processor "
          f"{partition.processor_of_resource(1)}")
    print()

    simulator = DpcpPSimulator(partition, behaviors)
    simulator.release_job(0, 0.0)
    simulator.release_job(1, 0.0)
    trace = simulator.run()

    print("Schedule (one column per time unit)")
    print(trace.render_gantt(time_step=1.0))
    print()

    print("Global-resource requests")
    for request in trace.requests:
        task = taskset.task(request.task_id)
        print(
            f"  {task.name} vertex v{request.vertex + 1}: issued t={request.issue_time:g}, "
            f"granted t={request.grant_time:g}, finished t={request.finish_time:g}"
        )
    print()

    print("Job response times")
    for (task_id, job_id), record in sorted(trace.jobs.items()):
        print(
            f"  {taskset.task(task_id).name} job {job_id}: "
            f"response time {record.response_time:g}"
        )
    print()

    problems = trace.check_all()
    print(f"Protocol invariants (mutual exclusion, Lemma 1): "
          f"{'all hold' if not problems else problems}")


if __name__ == "__main__":
    main()
