#!/usr/bin/env python3
"""A scaled-down version of the paper's Fig. 2(a) schedulability experiment.

Sweeps the normalized utilization for the Fig. 2(a) scenario (m = 16,
nr ∈ [4, 8], pr = 0.5, U_avg = 1.5, N ∈ [1, 50], L ∈ [50, 100] µs), prints
the acceptance-ratio series and an ASCII plot, and writes a CSV next to this
script.  The number of samples per point and the DAG size are reduced so the
example finishes in well under a minute; benchmarks/bench_fig2.py runs the
full-resolution version.

Run with:  python examples/schedulability_study.py
"""

from __future__ import annotations

import os

from repro.experiments import (
    SweepConfig,
    figure2_scenarios,
    render_ascii_plot,
    render_series_table,
    run_sweep,
    write_series_csv,
)


def main() -> None:
    scenario = figure2_scenarios(num_vertices_range=(10, 25))["a"]
    config = SweepConfig(
        samples_per_point=4,
        utilization_step_fraction=0.1,
        seed=2020,
    )
    print(f"Sweeping scenario {scenario.scenario_id} "
          f"({config.samples_per_point} task sets per point)...")
    result = run_sweep(scenario, config=config)

    print()
    print(render_series_table(result, title="Fig. 2(a) — acceptance ratios (scaled down)"))
    print()
    print(render_ascii_plot(result))

    target = os.path.join(os.path.dirname(__file__), "fig2a_example.csv")
    write_series_csv(result, target)
    print(f"\nSeries written to {target}")


if __name__ == "__main__":
    main()
