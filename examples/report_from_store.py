#!/usr/bin/env python3
"""Reporting quickstart: campaign store → cached aggregation → full bundle.

Demonstrates the reporting subsystem (see DESIGN.md, "Reporting") on a
reduced campaign, entirely through library entry points:

1. run a small fixed-seed campaign into a store;
2. aggregate the store — cold: every work unit is folded from the JSONL;
3. aggregate again — the on-disk cache is hit, nothing is re-folded;
4. write the full report bundle (REPORT.md, report.html, per-scenario
   CSVs) and show where each artifact landed.

Run with:  PYTHONPATH=src python examples/report_from_store.py
"""

from __future__ import annotations

import os
import shutil
import tempfile

from repro.campaign import cli
from repro.report import aggregate_store, write_report_bundle


def main() -> None:
    """Run the demo campaign and render its report bundle."""
    store = os.path.join(tempfile.mkdtemp(prefix="repro-report-"), "demo")

    print("=== 1. run a small campaign (two m=16 Fig. 2 scenarios) ===")
    cli.main([
        "run", "--store", store,
        "--grid", "fig2",
        "--filter", "m=16",
        "--samples", "3",
        "--step", "0.25",
        "--vertices", "5,10",
        "--seed", "2020",
        "--quiet",
    ])

    print("\n=== 2. cold aggregation: every unit folded from results.jsonl ===")
    aggregate = aggregate_store(store)
    stats = aggregate.cache_stats
    print(f"  cache hit: {stats.hit}  folded: {stats.units_folded}  "
          f"from cache: {stats.units_from_cache}")
    print(f"  weighted acceptance: "
          f"{ {p: round(r, 3) for p, r in aggregate.weighted_acceptance().items()} }")

    print("\n=== 3. warm aggregation: the on-disk cache is hit ===")
    aggregate = aggregate_store(store)
    stats = aggregate.cache_stats
    print(f"  cache hit: {stats.hit}  folded: {stats.units_folded}  "
          f"from cache: {stats.units_from_cache}")

    print("\n=== 4. write the report bundle ===")
    bundle = write_report_bundle(aggregate, os.path.join(store, "report"))
    for path in bundle.paths:
        print(f"  {path}")

    print("\n(deleting the demo store)")
    shutil.rmtree(os.path.dirname(store))


if __name__ == "__main__":
    main()
