#!/usr/bin/env python3
"""Campaign quickstart: run → interrupt → resume → export on a reduced grid.

Demonstrates the campaign engine (see EXPERIMENTS.md, "Running campaigns")
end to end, entirely through the same entry points the
``python -m repro.campaign`` CLI uses:

1. plan a 2-scenario campaign on a reduced grid and execute only part of it
   (simulating an interrupted run — Ctrl-C, kill, power loss);
2. show that the completed work units are checkpointed in the store;
3. resume with two worker processes — finished units are *not* re-executed;
4. export CSV series and the dominance/outperformance tables.

Run with:  PYTHONPATH=src python examples/campaign_parallel.py
"""

from __future__ import annotations

import os
import shutil
import tempfile

from repro.campaign import cli


def main() -> None:
    store = os.path.join(tempfile.mkdtemp(prefix="repro-campaign-"), "demo")
    run_flags = [
        "--store", store,
        "--grid", "fig2",          # the four Fig. 2 scenarios ...
        "--filter", "m=16",        # ... restricted to the two m=16 ones
        "--samples", "3",
        "--step", "0.25",
        "--vertices", "5,10",
        "--protocols", "DPCP-p-EN,SPIN,FED-FP",
        "--seed", "2020",
    ]

    print("=== 1. run, 'interrupted' after 3 of 8 work units ===")
    cli.main(["run", *run_flags, "--max-units", "3", "--quiet"])

    print("\n=== 2. the store has checkpointed the finished units ===")
    cli.main(["status", "--store", store])

    print("\n=== 3. resume with 2 workers (finished units are skipped) ===")
    cli.main(["resume", "--store", store, "--workers", "2", "--quiet"])

    print("\n=== 4. export figures/tables from the store ===")
    export_dir = os.path.join(store, "export")
    cli.main(["export", "--store", store, "--out", export_dir])
    for name in sorted(os.listdir(export_dir)):
        print(f"  {export_dir}/{name}")

    print("\n(deleting the demo store)")
    shutil.rmtree(os.path.dirname(store))


if __name__ == "__main__":
    main()
