#!/usr/bin/env python3
"""Handling light (sequential) tasks with the classic DPCP (Sec. VI).

Under federated scheduling, heavy DAG tasks own dedicated clusters while
light tasks are treated as sequential tasks on the remaining processors and
synchronise through the original DPCP.  This example partitions a mixed
system: the heavy tasks are handled by the DPCP-p test, the light tasks by
the sequential DPCP analysis on the processors left over.

Run with:  python examples/light_tasks_dpcp.py
"""

from __future__ import annotations

from repro.analysis import DpcpPEpTest
from repro.analysis.sequential import (
    SequentialTask,
    analyze_sequential_system,
    partition_sequential_system,
)
from repro.generation import (
    DagGenerationConfig,
    ResourceGenerationConfig,
    TaskSetGenerationConfig,
    generate_taskset,
)
from repro.model import Platform


def main() -> None:
    platform = Platform(16)

    # Heavy parallel tasks (total utilization 5) under DPCP-p.
    config = TaskSetGenerationConfig(
        average_utilization=1.5,
        dag=DagGenerationConfig(num_vertices_range=(10, 20), edge_probability=0.15),
        resources=ResourceGenerationConfig(
            num_resources_range=(3, 5),
            access_probability=0.5,
            request_count_range=(1, 8),
            cs_length_range=(15.0, 50.0),
        ),
    )
    heavy = generate_taskset(5.0, config, rng=99)
    heavy_result = DpcpPEpTest().test(heavy, platform)
    print("Heavy DAG tasks under DPCP-p-EP")
    print(f"  schedulable: {heavy_result.schedulable}")
    used_processors = 0
    if heavy_result.partition is not None:
        used_processors = len(heavy_result.partition.assigned_processors())
        for task in heavy:
            analysis = heavy_result.task_analyses[task.task_id]
            print(
                f"  {task.name}: R={analysis.wcrt/1e3:.2f} ms / D={task.deadline/1e3:.2f} ms "
                f"on {analysis.processors} processors"
            )
    print(f"  processors used by heavy tasks: {used_processors}")
    print()

    # Light sequential tasks on the remaining processors under the classic DPCP.
    light_tasks = [
        SequentialTask(0, wcet=2_000.0, period=20_000.0, priority=4,
                       requests={100: (2, 50.0)}),
        SequentialTask(1, wcet=5_000.0, period=50_000.0, priority=3,
                       requests={100: (1, 80.0)}),
        SequentialTask(2, wcet=8_000.0, period=100_000.0, priority=2,
                       requests={101: (3, 40.0)}),
        SequentialTask(3, wcet=12_000.0, period=200_000.0, priority=1,
                       requests={101: (2, 40.0)}),
    ]
    system = partition_sequential_system(
        light_tasks, platform.num_processors, reserved_processors=used_processors
    )
    print("Light sequential tasks under the classic DPCP")
    if system is None:
        print("  the remaining processors cannot host the light tasks")
        return
    print(f"  task placement:     {system.task_assignment}")
    print(f"  resource placement: {system.resource_assignment}")
    for task_id, wcrt in analyze_sequential_system(system).items():
        task = system.task(task_id)
        verdict = "ok" if wcrt <= task.deadline else "MISS"
        print(
            f"  light task {task_id}: R={wcrt/1e3:.2f} ms / D={task.deadline/1e3:.2f} ms [{verdict}]"
        )


if __name__ == "__main__":
    main()
