#!/usr/bin/env python3
"""Service quickstart: queries, coalescing, a campaign job, and a report.

Demonstrates the serving layer (see docs/service.md) end to end against an
*embedded* daemon — the same :class:`repro.service.ServiceDaemon` that
``python -m repro.service serve`` runs, started in-process on an ephemeral
loopback port so the example needs no subprocess and works in CI:

1. start the daemon and submit one schedulability query;
2. resubmit it — the result cache answers byte-identically without
   re-computing anything;
3. submit a campaign job and stream its progress push events;
4. fetch the aggregated report over the wire (``campaign report``'s
   exit-code semantics, served as a typed message);
5. shut the daemon down through the protocol.

Run with:  PYTHONPATH=src python examples/service_client.py
"""

from __future__ import annotations

import tempfile

from repro.campaign.planner import config_to_dict, scenario_to_dict
from repro.experiments.runner import SweepConfig
from repro.experiments.scenarios import figure2_scenarios
from repro.service import (
    ServiceClient,
    ServiceDaemon,
    SubmitCampaign,
    SubmitQuery,
)


def main() -> None:
    scenario = figure2_scenarios(num_vertices_range=(5, 10))["a"]
    data_dir = tempfile.mkdtemp(prefix="repro-service-")
    daemon = ServiceDaemon(data_dir=data_dir, port=0, workers=2).start()
    print(f"=== daemon on {daemon.host}:{daemon.port} (data dir {data_dir}) ===")
    try:
        with ServiceClient(*daemon.address) as client:
            print("\n=== 1. one schedulability query ===")
            query = SubmitQuery(
                scenario=scenario_to_dict(scenario),
                utilization=4.0,
                samples=5,
                seed=42,
                protocols=("DPCP-p-EP", "SPIN", "FED-FP"),
            )
            accepted, ready = client.query(query)
            print(f"job {accepted.job_id}: accepted {ready.result['accepted']}"
                  f" of {ready.result['evaluated']} task sets")

            print("\n=== 2. the identical query again: served from cache ===")
            repeat, ready_again = client.query(query)
            print(f"cached={repeat.cached}, "
                  f"byte-identical={ready.encode() == ready_again.encode()}")

            print("\n=== 3. a campaign job with streamed progress ===")
            job = client.submit(SubmitCampaign(
                scenarios=(scenario_to_dict(scenario),),
                sweep=config_to_dict(SweepConfig(
                    samples_per_point=2,
                    utilization_step_fraction=0.25,
                    seed=2020,
                )),
                protocols=("SPIN", "FED-FP"),
                workers=2,
            ))
            for event in client.progress(job.job_id):
                print(f"  [{event.done}/{event.total}] {event.unit_id}")
            result = client.wait_result(job.job_id)
            print(f"campaign exit code {result.exit_code}; store at "
                  f"{result.result['store_directory']}")

            print("\n=== 4. the aggregated report over the wire ===")
            report = client.report(job.job_id)
            for name, rate in sorted(
                report.report["weighted_acceptance"].items()
            ):
                print(f"  {name:10s} weighted acceptance {rate:.3f}")

            print("\n=== 5. typed shutdown ===")
            farewell = client.shutdown()
            print(f"daemon stopping ({farewell.jobs_running} jobs running)")
    finally:
        daemon.stop(wait_jobs=False)


if __name__ == "__main__":
    main()
