"""Small helpers shared by the benchmark modules."""

from __future__ import annotations


def emit(path: str, text: str) -> None:
    """Write a rendered artefact to ``path`` and echo it to stdout."""
    with open(path, "w") as handle:
        handle.write(text if text.endswith("\n") else text + "\n")
    print(text)
