#!/usr/bin/env python
"""Record component benchmark timings and the speedup versus the seed.

Runs :mod:`benchmarks.bench_components` (simulation excluded — it needs a
schedulable reference workload and dominates the runtime) on the fixed
workload seed baked into the module, extracts the per-component median
timings, and writes a JSON report next to the repository root:

* ``seed_us`` — the pre-optimization baseline medians.  Taken from
  ``--baseline-json`` (a raw pytest-benchmark export measured on the seed
  implementation) when given; otherwise carried over from the ``seed_us``
  section of an existing output file, so re-runs keep comparing against the
  original seed numbers.
* ``current_us`` — medians of this run.
* ``speedup_vs_seed`` — ``seed / current`` per component (only where a seed
  measurement exists; new benchmark variants such as the ``-reference``
  oracle engines have no seed counterpart).

Usage::

    PYTHONPATH=src python benchmarks/record_bench.py [--out BENCH_PR2.json]
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_FILE = os.path.join(os.path.dirname(os.path.abspath(__file__)), "bench_components.py")

#: Parametrized benchmark ids whose seed counterpart was unparametrized.
SEED_NAME_ALIASES = {
    "test_bench_path_enumeration[dp]": "test_bench_path_enumeration",
}


def run_benchmarks(selector: str) -> dict:
    """Run the component benchmarks and return ``{name: median_us}``."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        json_path = handle.name
    try:
        command = [
            sys.executable,
            "-m",
            "pytest",
            BENCH_FILE,
            "-q",
            "--benchmark-only",
            f"--benchmark-json={json_path}",
            "-k",
            selector,
            "-p",
            "no:cacheprovider",
        ]
        env = dict(os.environ)
        src = os.path.join(REPO_ROOT, "src")
        env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) + env.get(
            "PYTHONPATH", ""
        )
        subprocess.run(command, check=True, cwd=REPO_ROOT, env=env)
        with open(json_path) as fh:
            data = json.load(fh)
    finally:
        os.unlink(json_path)
    return {
        bench["name"]: round(bench["stats"]["median"] * 1e6, 3)
        for bench in data["benchmarks"]
    }


def load_seed_baseline(args: argparse.Namespace) -> dict:
    """Seed medians from --baseline-json, or the previous output file."""
    if args.baseline_json:
        with open(args.baseline_json) as fh:
            data = json.load(fh)
        return {
            bench["name"]: round(bench["stats"]["median"] * 1e6, 3)
            for bench in data["benchmarks"]
        }
    if os.path.exists(args.seed_from):
        with open(args.seed_from) as fh:
            return json.load(fh).get("seed_us", {})
    return {}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=os.path.join(REPO_ROOT, "BENCH_PR2.json"),
        help="output report path (default: BENCH_PR2.json at the repo root)",
    )
    parser.add_argument(
        "--seed-from",
        default=os.path.join(REPO_ROOT, "BENCH_PR2.json"),
        help="existing report whose seed_us section is carried over",
    )
    parser.add_argument(
        "--baseline-json",
        default=None,
        help="raw pytest-benchmark JSON measured on the seed implementation",
    )
    parser.add_argument(
        "--selector",
        default="not simulation",
        help="pytest -k selector over the component benchmarks",
    )
    args = parser.parse_args(argv)

    seed = load_seed_baseline(args)
    current = run_benchmarks(args.selector)
    speedup = {}
    for name, value in sorted(current.items()):
        seed_name = SEED_NAME_ALIASES.get(name, name)
        if seed_name in seed and value > 0:
            speedup[name] = round(seed[seed_name] / value, 2)

    report = {
        "format": 1,
        "generated": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "workload": (
            "bench_components fixed workload: generate_taskset(6.0, vertex_max=30, "
            "rng=1) on Platform(16); medians in microseconds"
        ),
        "seed_us": seed,
        "current_us": current,
        "speedup_vs_seed": speedup,
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")

    width = max(len(n) for n in current) if current else 0
    print(f"\n{'component':<{width}}  {'current':>10}  {'seed':>10}  speedup")
    for name, value in sorted(current.items()):
        seed_name = SEED_NAME_ALIASES.get(name, name)
        base = seed.get(seed_name)
        base_txt = f"{base:>10.1f}" if base else f"{'-':>10}"
        ratio = f"{speedup[name]:.2f}x" if name in speedup else "-"
        print(f"{name:<{width}}  {value:>10.1f}  {base_txt}  {ratio}")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
