#!/usr/bin/env python
"""Record component benchmark timings and the speedups versus prior recordings.

Runs :mod:`benchmarks.bench_components` (simulation excluded — it needs a
schedulable reference workload and dominates the runtime) on the fixed
workload seed baked into the module, extracts the per-component median
timings, and writes a JSON report next to the repository root:

* ``seed_us`` — the pre-optimization baseline medians.  Taken from
  ``--baseline-json`` (a raw pytest-benchmark export measured on the seed
  implementation) when given; otherwise carried over from the ``seed_us``
  section of an existing report (``--seed-from``, falling back to the
  previous PR's recording), so re-runs keep comparing against the original
  seed numbers.
* ``prev_us`` — the previous PR's recorded medians (the ``current_us``
  section of ``--prev-from``, default ``BENCH_PR2.json``), so each PR's
  report shows what *that* PR changed.
* ``current_us`` — medians of this run.
* ``speedup_vs_seed`` / ``speedup_vs_prev`` — ``baseline / current`` per
  component (only where a baseline measurement exists; benchmark variants
  without a counterpart — e.g. a newly added ``-reference`` oracle id — are
  compared against the same component's baseline via the alias table).
* ``campaign`` — the macro-benchmark the north star actually cares about:
  one fixed-seed utilization point executed cold through the campaign
  executor three ways (the seed's per-sample reference loop, the
  per-sample kernel loop, and the arena-batched path), reported as
  wall-clock seconds per 1000 task sets with ``speedup_vs_seed`` /
  ``speedup_vs_prev`` ratios (``--skip-campaign`` omits the section).
  ``--check-campaign BASELINE.json`` turns the section into a CI gate:
  the run fails when the arena arm regressed by more than
  :data:`CAMPAIGN_REGRESSION_BUDGET_PERCENT` versus the committed
  baseline, after normalising out machine speed via the same-run
  per-sample kernel arm (shared runners differ several-fold in absolute
  speed; the arena/per-sample ratio is what the arena can regress).
* ``telemetry_overhead`` — the EP/EN/SPIN/LPP kernels timed with an
  active :mod:`repro.obs.telemetry` session against the disabled default,
  as per-kernel and median overhead percentages (in-process interleaved
  blocks, per-arm floors compared — see :func:`measure_telemetry_overhead`
  for why two separate pytest runs cannot resolve this).  The
  observability budget is ≤2 % median overhead on these hot paths
  (``--skip-overhead`` omits the section).

Usage::

    PYTHONPATH=src python benchmarks/record_bench.py [--out BENCH_PR6.json]
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_FILE = os.path.join(os.path.dirname(os.path.abspath(__file__)), "bench_components.py")

#: Benchmark ids whose baseline counterpart may go by another name: the seed
#: had an unparametrized path-enumeration bench, and the ``-reference``
#: oracle ids map to the component they are the oracle of (their baseline is
#: the pre-kernel implementation of the same analysis).  An exact-name match
#: in the baseline always wins; the alias is the fallback only.
BASELINE_NAME_ALIASES = {
    "test_bench_path_enumeration[dp]": "test_bench_path_enumeration",
    "test_bench_schedulability_test[DPCP-p-EP-reference]": (
        "test_bench_schedulability_test[DPCP-p-EP]"
    ),
    "test_bench_schedulability_test[DPCP-p-EN-reference]": (
        "test_bench_schedulability_test[DPCP-p-EN]"
    ),
    "test_bench_schedulability_test[SPIN-reference]": (
        "test_bench_schedulability_test[SPIN]"
    ),
    "test_bench_schedulability_test[LPP-reference]": (
        "test_bench_schedulability_test[LPP]"
    ),
}


def baseline_name(name: str, baseline: dict) -> str:
    """The baseline key ``name`` compares against (exact match first)."""
    if name in baseline:
        return name
    return BASELINE_NAME_ALIASES.get(name, name)


#: Observability budget: median kernel overhead with telemetry enabled.
OVERHEAD_BUDGET_PERCENT = 2.0

#: CI budget for the campaign macro-benchmark: the arena arm may be at most
#: this much slower (machine-normalised) than the committed baseline.
CAMPAIGN_REGRESSION_BUDGET_PERCENT = 10.0

#: Fixed seed of the campaign macro-benchmark (generation + sweep identity).
CAMPAIGN_SEED = 777


def run_benchmarks(selector: str, env_extra: dict = None) -> dict:
    """Run the component benchmarks and return ``{name: median_us}``.

    ``env_extra`` adds/overrides environment variables for the pytest
    subprocess (e.g. ``REPRO_BENCH_TELEMETRY=1`` to benchmark with an
    active telemetry session).
    """
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        json_path = handle.name
    try:
        command = [
            sys.executable,
            "-m",
            "pytest",
            BENCH_FILE,
            "-q",
            "--benchmark-only",
            f"--benchmark-json={json_path}",
            "-k",
            selector,
            "-p",
            "no:cacheprovider",
        ]
        env = dict(os.environ)
        src = os.path.join(REPO_ROOT, "src")
        env["PYTHONPATH"] = src + os.pathsep * bool(env.get("PYTHONPATH")) + env.get(
            "PYTHONPATH", ""
        )
        if env_extra:
            env.update(env_extra)
        subprocess.run(command, check=True, cwd=REPO_ROOT, env=env)
        with open(json_path) as fh:
            data = json.load(fh)
    finally:
        os.unlink(json_path)
    return {
        bench["name"]: round(bench["stats"]["median"] * 1e6, 3)
        for bench in data["benchmarks"]
    }


def load_seed_baseline(args: argparse.Namespace) -> dict:
    """Seed medians from --baseline-json, or an existing report's seed_us."""
    if args.baseline_json:
        with open(args.baseline_json) as fh:
            data = json.load(fh)
        return {
            bench["name"]: round(bench["stats"]["median"] * 1e6, 3)
            for bench in data["benchmarks"]
        }
    for path in (args.seed_from, args.prev_from):
        if path and os.path.exists(path):
            with open(path) as fh:
                seed = json.load(fh).get("seed_us", {})
            if seed:
                return seed
    return {}


def load_prev_recording(args: argparse.Namespace) -> dict:
    """The previous PR's ``current_us`` medians (empty when unavailable)."""
    if args.prev_from and os.path.exists(args.prev_from):
        with open(args.prev_from) as fh:
            return json.load(fh).get("current_us", {})
    return {}


def speedups(current: dict, baseline: dict) -> dict:
    """Per-component ``baseline / current`` ratios (exact name, then alias)."""
    ratios = {}
    for name, value in sorted(current.items()):
        base_name = baseline_name(name, baseline)
        if base_name in baseline and value > 0:
            ratios[name] = round(baseline[base_name] / value, 2)
    return ratios


def _median(values):
    """Median of a non-empty sequence."""
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def measure_telemetry_overhead(
    seconds_per_arm: float = 2.0, block_pairs: int = 60
) -> dict:
    """Kernel timings with telemetry off vs. on, as an overhead report.

    Measured **in one process with interleaved blocks**: each kernel runs
    ``block_pairs`` alternating (off-block, on-block) pairs — the off
    block with no active session (the production default), the on block
    inside a fresh `repro.obs.telemetry` session that is snapshotted
    afterwards, mirroring the executor's session-per-work-unit lifecycle.
    The reported overhead is ``min(on blocks) / min(off blocks)``: timing
    noise on shared hardware is strictly additive (interruptions only ever
    slow a block down), so comparing per-arm floors cancels it, where two
    separate pytest-benchmark processes differ by ±5-13 % run to run and
    cannot resolve a 2 % budget.  (To measure the whole pytest suite with
    telemetry on anyway, run it with ``REPRO_BENCH_TELEMETRY=1`` — see
    ``benchmarks/conftest.py``.)
    """
    for path in (os.path.join(REPO_ROOT, "src"), os.path.dirname(BENCH_FILE)):
        if path not in sys.path:
            sys.path.insert(0, path)
    from bench_components import _config
    from repro.analysis import DpcpPEnTest, DpcpPEpTest, LppTest, SpinTest
    from repro.generation import generate_taskset
    from repro.model import Platform
    from repro.obs import telemetry

    taskset = generate_taskset(6.0, _config(vertex_max=30), rng=1)
    platform = Platform(16)
    kernels = {
        "DPCP-p-EP": DpcpPEpTest(),
        "DPCP-p-EN": DpcpPEnTest(),
        "SPIN": SpinTest(),
        "LPP": LppTest(),
    }
    off_us, on_us, overhead = {}, {}, {}
    for protocol, test in kernels.items():
        run = test.test
        for _ in range(10):  # warm-up: compiled-table and allocator caches
            run(taskset, platform)
        with telemetry.session() as warm:  # warm the instrumented paths too
            for _ in range(10):
                run(taskset, platform)
        warm.to_dict()
        started = time.perf_counter()
        run(taskset, platform)
        once = time.perf_counter() - started
        per_block = seconds_per_arm / block_pairs
        block = max(10, min(2000, int(per_block / max(once, 1e-7))))
        off_times, on_times = [], []
        for _ in range(block_pairs):
            started = time.perf_counter()
            for _ in range(block):
                run(taskset, platform)
            off_times.append(time.perf_counter() - started)
            with telemetry.session() as bundle:
                started = time.perf_counter()
                for _ in range(block):
                    run(taskset, platform)
                on_times.append(time.perf_counter() - started)
            bundle.to_dict()
        name = f"test_bench_schedulability_test[{protocol}]"
        off_us[name] = round(min(off_times) / block * 1e6, 3)
        on_us[name] = round(min(on_times) / block * 1e6, 3)
        overhead[name] = round(100.0 * (on_us[name] / off_us[name] - 1.0), 2)
    median = round(_median(list(overhead.values())), 2) if overhead else None
    return {
        "budget_percent": OVERHEAD_BUDGET_PERCENT,
        "method": (
            f"in-process interleaved off/on blocks per kernel ({block_pairs} "
            f"pairs, ~{seconds_per_arm}s per arm), fresh session per on-block, "
            "per-arm minimum block time compared (additive noise cancels)"
        ),
        "off_us": off_us,
        "on_us": on_us,
        "overhead_percent": overhead,
        "median_overhead_percent": median,
        "within_budget": (
            median is not None and median <= OVERHEAD_BUDGET_PERCENT
        ),
    }


def measure_campaign_macro(samples: int = 40, prev_campaign: dict = None) -> dict:
    """Wall-clock per 1000 task sets through the campaign executor, cold.

    One fixed-seed utilization point (wide DAGs under light per-request
    contention on a 32-core platform — the regime the paper's Fig. 2-style
    sweeps live in) is executed three ways, each arm timed around a fresh
    :func:`repro.campaign.executor.execute_unit` call so every arm pays
    generation and table compilation cold:

    * ``per_sample_seed`` — the per-sample loop over the **reference**
      engine suite: the seed implementation this repository started from,
      and the baseline ``speedup_vs_seed`` compares against (matching the
      component table's convention, where ``seed_us`` records the
      pre-kernel medians).
    * ``per_sample_kernel`` — the per-sample loop over today's scalar
      kernels (the ``--batch-size``-omitted default), so the report also
      shows what batching adds *beyond* the already-kernelised loop.
    * ``arena`` — the same kernel suite through the cross-taskset arena
      (``--batch-size 0``: the whole unit in shared batched waves).

    The kernel and arena arms must agree exactly on acceptance counts
    (identical-by-construction verdicts); a mismatch raises instead of
    recording a benchmark of two different computations.
    """
    for path in (os.path.join(REPO_ROOT, "src"),):
        if path not in sys.path:
            sys.path.insert(0, path)
    from repro.analysis import DpcpPEnTest, DpcpPEpTest, LppTest, SpinTest
    from repro.analysis.dpcp_p import ENGINE_REFERENCE
    from repro.campaign.executor import execute_unit
    from repro.campaign.planner import plan_scenario_units
    from repro.experiments.runner import SweepConfig
    from repro.experiments.scenarios import Scenario

    scenario = Scenario(
        platform_size=32,
        resource_count_range=(8, 16),
        average_utilization=1.5,
        access_probability=1.0,
        request_count_range=(1, 10),
        cs_length_range=(1.0, 15.0),
        num_vertices_range=(10, 16),
    )
    sweep = SweepConfig(
        samples_per_point=samples,
        utilization_step_fraction=0.3,
        seed=CAMPAIGN_SEED,
    )
    unit = plan_scenario_units(scenario, sweep)[0]

    def reference_suite():
        return [
            SpinTest(engine=ENGINE_REFERENCE),
            LppTest(engine=ENGINE_REFERENCE),
            DpcpPEpTest(engine=ENGINE_REFERENCE),
            DpcpPEnTest(engine=ENGINE_REFERENCE),
        ]

    def kernel_suite():
        return [SpinTest(), LppTest(), DpcpPEpTest(), DpcpPEnTest()]

    arms = [
        ("per_sample_seed", reference_suite, None),
        ("per_sample_kernel", kernel_suite, None),
        ("arena", kernel_suite, 0),
    ]
    seconds_per_1k, results = {}, {}
    for name, suite, batch_size in arms:
        protocols = suite()
        started = time.perf_counter()
        result = execute_unit(unit, protocols, batch_size=batch_size)
        elapsed = time.perf_counter() - started
        results[name] = result
        evaluated = max(result.evaluated, 1)
        seconds_per_1k[name] = round(elapsed / evaluated * 1000.0, 3)
    if results["arena"].accepted != results["per_sample_kernel"].accepted:
        raise AssertionError(
            "arena and per-sample kernel arms disagree on acceptance: "
            f"{results['arena'].accepted} vs "
            f"{results['per_sample_kernel'].accepted}"
        )

    prev_arena = (prev_campaign or {}).get("seconds_per_1k", {}).get("arena")
    arena = seconds_per_1k["arena"]
    return {
        "workload": (
            f"campaign unit {unit.unit_id} (m=32, nr=8..16, U=1.5, pr=1.0, "
            f"N=1..10, L=1..15us, v=10..16) at total utilization "
            f"{unit.utilization}, {samples} samples, seed {CAMPAIGN_SEED}, "
            "each arm cold through execute_unit"
        ),
        "unit_id": unit.unit_id,
        "utilization": unit.utilization,
        "samples_per_point": samples,
        "evaluated": results["arena"].evaluated,
        "generation_failures": results["arena"].generation_failures,
        "accepted": dict(results["arena"].accepted),
        "seconds_per_1k": seconds_per_1k,
        "speedup_vs_seed": round(seconds_per_1k["per_sample_seed"] / arena, 2),
        "speedup_vs_kernel_loop": round(
            seconds_per_1k["per_sample_kernel"] / arena, 2
        ),
        "speedup_vs_prev": (
            round(prev_arena / arena, 2) if prev_arena else None
        ),
    }


def check_campaign_regression(campaign: dict, baseline_path: str) -> str:
    """CI gate: error text if the arena arm regressed beyond budget, else ``""``.

    Absolute wall-clock is machine-bound (shared CI runners differ
    several-fold), so the comparison normalises both sides by their own
    per-sample kernel arm: what may not regress is how much faster the
    arena is than the per-sample loop *on the same machine*.
    """
    with open(baseline_path) as fh:
        baseline = json.load(fh).get("campaign", {})
    base = baseline.get("seconds_per_1k", {})
    if not base.get("arena") or not base.get("per_sample_kernel"):
        return f"no campaign baseline in {baseline_path}"
    current = campaign["seconds_per_1k"]
    base_ratio = base["arena"] / base["per_sample_kernel"]
    current_ratio = current["arena"] / current["per_sample_kernel"]
    regression = 100.0 * (current_ratio / base_ratio - 1.0)
    if regression > CAMPAIGN_REGRESSION_BUDGET_PERCENT:
        return (
            f"arena wall-clock per 1k task sets regressed {regression:+.1f}% "
            f"vs {os.path.basename(baseline_path)} (budget "
            f"{CAMPAIGN_REGRESSION_BUDGET_PERCENT}%): "
            f"normalised {current_ratio:.3f} vs baseline {base_ratio:.3f}"
        )
    return ""


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=os.path.join(REPO_ROOT, "BENCH_PR8.json"),
        help="output report path (default: BENCH_PR8.json at the repo root)",
    )
    parser.add_argument(
        "--seed-from",
        default=os.path.join(REPO_ROOT, "BENCH_PR6.json"),
        help="existing report whose seed_us section is carried over "
        "(falls back to --prev-from when missing)",
    )
    parser.add_argument(
        "--prev-from",
        default=os.path.join(REPO_ROOT, "BENCH_PR6.json"),
        help="previous PR's report; its current_us becomes this report's prev_us",
    )
    parser.add_argument(
        "--skip-overhead",
        action="store_true",
        help="omit the telemetry on-vs-off overhead measurement",
    )
    parser.add_argument(
        "--skip-campaign",
        action="store_true",
        help="omit the campaign macro-benchmark section",
    )
    parser.add_argument(
        "--campaign-samples",
        type=int,
        default=40,
        help="samples per point of the campaign macro-benchmark workload",
    )
    parser.add_argument(
        "--check-campaign",
        default=None,
        metavar="BASELINE.json",
        help="fail (exit 1) when the arena arm's machine-normalised "
        "wall-clock per 1k task sets regressed more than "
        f"{CAMPAIGN_REGRESSION_BUDGET_PERCENT}%% vs this committed report",
    )
    parser.add_argument(
        "--baseline-json",
        default=None,
        help="raw pytest-benchmark JSON measured on the seed implementation",
    )
    parser.add_argument(
        "--selector",
        default="not simulation",
        help="pytest -k selector over the component benchmarks",
    )
    args = parser.parse_args(argv)

    seed = load_seed_baseline(args)
    prev = load_prev_recording(args)
    prev_campaign = {}
    if args.prev_from and os.path.exists(args.prev_from):
        with open(args.prev_from) as fh:
            prev_campaign = json.load(fh).get("campaign", {})
    current = run_benchmarks(args.selector)
    campaign = (
        None
        if args.skip_campaign
        else measure_campaign_macro(args.campaign_samples, prev_campaign)
    )
    overhead = None if args.skip_overhead else measure_telemetry_overhead()

    report = {
        "format": 2,
        "generated": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "workload": (
            "bench_components fixed workload: generate_taskset(6.0, vertex_max=30, "
            "rng=1) on Platform(16); medians in microseconds"
        ),
        "seed_us": seed,
        "prev_us": prev,
        "current_us": current,
        "speedup_vs_seed": speedups(current, seed),
        "speedup_vs_prev": speedups(current, prev),
    }
    if campaign is not None:
        report["campaign"] = campaign
    if overhead is not None:
        report["telemetry_overhead"] = overhead
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")

    width = max(len(n) for n in current) if current else 0
    print(
        f"\n{'component':<{width}}  {'current':>10}  {'prev':>10}  "
        f"{'seed':>10}  vs prev  vs seed"
    )
    for name, value in sorted(current.items()):
        prev_base = prev.get(baseline_name(name, prev))
        seed_base = seed.get(baseline_name(name, seed))
        prev_txt = f"{prev_base:>10.1f}" if prev_base else f"{'-':>10}"
        seed_txt = f"{seed_base:>10.1f}" if seed_base else f"{'-':>10}"
        vs_prev = report["speedup_vs_prev"].get(name)
        vs_seed = report["speedup_vs_seed"].get(name)
        prev_ratio = f"{vs_prev:.2f}x" if vs_prev else "-"
        seed_ratio = f"{vs_seed:.2f}x" if vs_seed else "-"
        print(
            f"{name:<{width}}  {value:>10.1f}  {prev_txt}  {seed_txt}  "
            f"{prev_ratio:>7}  {seed_ratio:>7}"
        )
    if campaign is not None:
        print("\ncampaign macro-benchmark (wall-clock seconds per 1k task sets)")
        for arm in ("per_sample_seed", "per_sample_kernel", "arena"):
            print(f"  {arm:<20} {campaign['seconds_per_1k'][arm]:>10.3f}")
        vs_prev = campaign["speedup_vs_prev"]
        print(
            f"  arena speedup: {campaign['speedup_vs_seed']:.2f}x vs seed, "
            f"{campaign['speedup_vs_kernel_loop']:.2f}x vs kernel loop, "
            + (f"{vs_prev:.2f}x vs prev" if vs_prev else "no prev recording")
        )
    if overhead is not None:
        print(
            f"\ntelemetry overhead (budget ≤{overhead['budget_percent']}% median)"
        )
        for name, percent in sorted(overhead["overhead_percent"].items()):
            print(f"{name:<{width}}  {percent:>+7.2f}%")
        median = overhead["median_overhead_percent"]
        verdict = "within" if overhead["within_budget"] else "OVER"
        print(f"{'median':<{width}}  {median:>+7.2f}%  ({verdict} budget)")
    print(f"\nwrote {args.out}")
    if args.check_campaign:
        if campaign is None:
            print("--check-campaign needs the campaign section", file=sys.stderr)
            return 1
        failure = check_campaign_regression(campaign, args.check_campaign)
        if failure:
            print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print(
            f"campaign gate: within {CAMPAIGN_REGRESSION_BUDGET_PERCENT}% of "
            f"{args.check_campaign}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
