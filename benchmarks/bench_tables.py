"""Regenerate the paper's Tables 2 and 3 (dominance / outperformance statistics).

The paper evaluates 216 parameter scenarios; by default this benchmark keeps
every ``REPRO_BENCH_GRID_STRIDE``-th scenario (12 scenarios) and uses a small
number of task sets per utilization point so the run finishes in a few
minutes.  Set ``REPRO_BENCH_GRID_STRIDE=1`` for the full grid.

The rendered tables are written to ``benchmarks/results/table2.txt`` and
``table3.txt``; the benchmark asserts the headline findings of the paper:
DPCP-p-EP outperforms every other protocol in (almost) all scenarios and
dominates DPCP-p-EN, SPIN and LPP far more often than the converse.
"""

from __future__ import annotations

import os

from repro.experiments import (
    SweepConfig,
    full_grid,
    pairwise_statistics,
    render_dominance_table,
    render_outperformance_table,
    run_campaign,
)

from _bench_utils import emit


def _scenarios(bench_settings):
    stride = max(1, bench_settings["grid_stride"])
    grid = full_grid(num_vertices_range=(10, bench_settings["vertex_max"]))
    return grid[::stride]


def _run_campaign(bench_settings):
    config = SweepConfig(
        samples_per_point=max(2, bench_settings["samples_per_point"] - 1),
        utilization_step_fraction=bench_settings["step_fraction"],
        seed=bench_settings["seed"],
    )
    results = run_campaign(_scenarios(bench_settings), config=config)
    return pairwise_statistics(results)


def test_table2_table3(benchmark, bench_settings, results_dir):
    """Benchmark the scenario campaign and emit the dominance/outperformance tables."""
    stats = benchmark.pedantic(_run_campaign, args=(bench_settings,), rounds=1, iterations=1)

    table2 = render_dominance_table(stats)
    table3 = render_outperformance_table(stats)
    emit(os.path.join(results_dir, "table2.txt"), table2)
    emit(os.path.join(results_dir, "table3.txt"), table3)

    # Headline findings of Tables 2 and 3: DPCP-p-EP is never dominated or
    # outperformed by the other protocols, and it outperforms them in a clear
    # majority of the scenarios.
    for other in ("DPCP-p-EN", "SPIN", "LPP"):
        assert stats.dominance[other]["DPCP-p-EP"] == 0
        assert stats.outperformance[other]["DPCP-p-EP"] == 0
        assert (
            stats.outperformance["DPCP-p-EP"][other]
            >= 0.5 * stats.scenario_count
        )
        assert (
            stats.dominance["DPCP-p-EP"][other]
            >= stats.dominance[other]["DPCP-p-EP"]
        )
