"""Regenerate the paper's Fig. 2 (acceptance-ratio curves), one benchmark per panel.

Each benchmark sweeps the normalized utilization for one of the four Fig. 2
scenarios, prints the acceptance-ratio series (the data behind the plotted
curves), writes it to ``benchmarks/results/fig2<panel>.csv`` / ``.txt``, and
checks the qualitative findings reported in the paper:

* FED-FP (no resources) is the upper baseline;
* DPCP-p-EP accepts at least as many task sets as DPCP-p-EN, SPIN, and LPP.

Absolute acceptance ratios differ from the paper (see EXPERIMENTS.md), but
the ordering — who wins, and that the advantage grows with contention — is
reproduced.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import (
    SweepConfig,
    figure2_scenarios,
    render_series_table,
    run_sweep,
    series_to_csv,
)

from _bench_utils import emit

PANELS = ("a", "b", "c", "d")


def _sweep_config(bench_settings) -> SweepConfig:
    return SweepConfig(
        samples_per_point=bench_settings["samples_per_point"],
        utilization_step_fraction=bench_settings["step_fraction"],
        seed=bench_settings["seed"],
    )


def _run_panel(panel: str, bench_settings):
    scenario = figure2_scenarios(
        num_vertices_range=(10, bench_settings["vertex_max"])
    )[panel]
    return run_sweep(scenario, config=_sweep_config(bench_settings))


def _check_and_emit(panel: str, result, results_dir):
    curves = result.curves
    ep = curves["DPCP-p-EP"].total_accepted
    en = curves["DPCP-p-EN"].total_accepted
    spin = curves["SPIN"].total_accepted
    lpp = curves["LPP"].total_accepted
    fed = curves["FED-FP"].total_accepted
    # Qualitative shape of Fig. 2: FED-FP on top, DPCP-p-EP at least as good
    # as the other resource-aware analyses.
    assert fed >= ep >= en
    assert ep >= spin
    assert ep >= lpp

    table = render_series_table(
        result, title=f"Fig. 2({panel}) — {result.scenario.scenario_id}"
    )
    emit(os.path.join(results_dir, f"fig2{panel}.txt"), table)
    with open(os.path.join(results_dir, f"fig2{panel}.csv"), "w") as handle:
        handle.write(series_to_csv(result))


@pytest.mark.parametrize("panel", PANELS)
def test_fig2_panel(benchmark, panel, bench_settings, results_dir):
    """Benchmark one utilization sweep of Fig. 2 and emit its series."""
    result = benchmark.pedantic(
        _run_panel, args=(panel, bench_settings), rounds=1, iterations=1
    )
    _check_and_emit(panel, result, results_dir)
