"""Shared configuration for the benchmark harness.

The benchmarks regenerate the paper's figures and tables on scaled-down
sweeps so that the whole suite finishes in minutes on a laptop.  The scale
knobs can be overridden through environment variables (documented in
EXPERIMENTS.md):

* ``REPRO_BENCH_SAMPLES``      — task sets per utilization point (default 8)
* ``REPRO_BENCH_STEP``         — utilization step as a fraction of m (default 0.1)
* ``REPRO_BENCH_VERTEX_MAX``   — maximum DAG size (default 30, paper uses 100)
* ``REPRO_BENCH_GRID_STRIDE``  — keep every k-th scenario of the 216-scenario
  grid for the table benchmarks (default 9 → 24 scenarios; 1 = full grid)
* ``REPRO_BENCH_TELEMETRY``    — ``1`` keeps a :mod:`repro.obs.telemetry`
  session active for the whole benchmark run, so the instrumented hot
  paths actually record (how ``record_bench.py`` measures the telemetry
  overhead reported in ``BENCH_PR6.json``)

Rendered tables and CSV series are written to ``benchmarks/results/``.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def env_int(name: str, default: int) -> int:
    """Integer environment override with a default."""
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def env_float(name: str, default: float) -> float:
    """Float environment override with a default."""
    try:
        return float(os.environ.get(name, default))
    except ValueError:
        return default


@pytest.fixture(scope="session")
def bench_settings():
    """Resolved benchmark scale settings."""
    return {
        "samples_per_point": env_int("REPRO_BENCH_SAMPLES", 8),
        "step_fraction": env_float("REPRO_BENCH_STEP", 0.1),
        "vertex_max": env_int("REPRO_BENCH_VERTEX_MAX", 30),
        "grid_stride": env_int("REPRO_BENCH_GRID_STRIDE", 9),
        "seed": env_int("REPRO_BENCH_SEED", 20200706),
    }


@pytest.fixture(scope="session", autouse=True)
def telemetry_session():
    """Active telemetry session for the run when ``REPRO_BENCH_TELEMETRY=1``.

    The instrumentation points in the analysis kernels are no-ops unless a
    session is active, so the default benchmark run measures the disabled
    fast path; setting the variable measures the enabled path instead.
    ``record_bench.py`` runs the kernel benchmarks both ways and reports
    the difference as ``telemetry_overhead``.
    """
    if os.environ.get("REPRO_BENCH_TELEMETRY") != "1":
        yield None
        return
    from repro.obs import telemetry

    with telemetry.session() as bundle:
        yield bundle


@pytest.fixture(scope="session")
def results_dir():
    """Directory where rendered benchmark artefacts are written."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR
