"""Micro-benchmarks of the library's building blocks.

These are engineering benchmarks (not figures from the paper): they track the
cost of workload generation, path enumeration, the DPCP-p analyses, the
partitioning heuristic, and the runtime simulator on a fixed mid-size system,
so that performance regressions are visible.
"""

from __future__ import annotations

import pytest

from repro.analysis import DpcpPEnTest, DpcpPEpTest, LppTest, SpinTest
from repro.analysis.dpcp_p.partition import wfd_assign_resources
from repro.analysis.paths import PathEnumerator
from repro.generation import (
    DagGenerationConfig,
    ResourceGenerationConfig,
    TaskSetGenerationConfig,
    generate_taskset,
    rand_fixed_sum,
)
from repro.model import Platform
from repro.model.platform import minimal_federated_clusters
from repro.sim import DpcpPSimulator


def _config(vertex_max: int) -> TaskSetGenerationConfig:
    return TaskSetGenerationConfig(
        average_utilization=1.5,
        dag=DagGenerationConfig(num_vertices_range=(10, vertex_max), edge_probability=0.1),
        resources=ResourceGenerationConfig(
            num_resources_range=(4, 8),
            access_probability=0.5,
            request_count_range=(1, 25),
            cs_length_range=(15.0, 50.0),
        ),
    )


@pytest.fixture(scope="module")
def workload():
    config = _config(vertex_max=30)
    taskset = generate_taskset(6.0, config, rng=1)
    platform = Platform(16)
    return config, taskset, platform


def test_bench_randfixedsum(benchmark):
    """RandFixedSum: 1000 vectors of 8 utilizations."""
    benchmark(lambda: rand_fixed_sum(8, 12.0, 1.0, 3.0, nsets=1000, rng=0))


def test_bench_taskset_generation(benchmark, workload):
    """Full task-set synthesis for one utilization point."""
    config, _, _ = workload
    counter = iter(range(10_000))
    benchmark(lambda: generate_taskset(6.0, config, rng=next(counter)))


@pytest.mark.parametrize("algorithm", ["dp", "walk"])
def test_bench_path_enumeration(benchmark, workload, algorithm):
    """Complete-path enumeration (signature DP vs the reference walk)."""
    _, taskset, _ = workload

    def enumerate_all():
        enumerator = PathEnumerator(algorithm=algorithm)
        return [enumerator.enumerate(task).profiles for task in taskset]

    benchmark(enumerate_all)


def test_bench_wfd_partitioning(benchmark, workload):
    """WFD resource assignment on minimal federated clusters."""
    _, taskset, platform = workload
    clusters = minimal_federated_clusters(taskset, platform)
    assert clusters is not None
    benchmark(lambda: wfd_assign_resources(taskset, clusters))


@pytest.mark.parametrize(
    "protocol_factory",
    [
        DpcpPEpTest,
        DpcpPEnTest,
        SpinTest,
        LppTest,
        lambda: DpcpPEpTest(engine="reference"),
        lambda: DpcpPEnTest(engine="reference"),
        lambda: SpinTest(engine="reference"),
        lambda: LppTest(engine="reference"),
    ],
    ids=[
        "DPCP-p-EP",
        "DPCP-p-EN",
        "SPIN",
        "LPP",
        "DPCP-p-EP-reference",
        "DPCP-p-EN-reference",
        "SPIN-reference",
        "LPP-reference",
    ],
)
def test_bench_schedulability_test(benchmark, workload, protocol_factory):
    """One full schedulability test (partitioning + analysis).

    Every protocol defaults to its compiled kernel engine; the
    ``-reference`` ids run the retained straight-line oracles so the
    kernels' speedups stay visible in the benchmark history.

    The SPIN/LPP lane caches (hung off the shared CompiledTaskset's
    ``protocol_cache``) are cleared on every iteration: a campaign analyses
    each generated task set once per protocol, so timing repeated runs of a
    warm kernel would overstate the speedup.  (DPCP-p's partition-dependent
    lanes live in the per-call `DpcpPKernel` and are cold anyway.)  The
    task-static tables themselves stay warm — in a campaign they are
    compiled once per sample and shared across all protocols of the work
    unit.
    """
    from repro.analysis.engine import compile_taskset

    _, taskset, platform = workload
    protocol = protocol_factory()
    tables = compile_taskset(taskset)

    def run():
        tables.protocol_cache.clear()
        return protocol.test(taskset, platform)

    benchmark(run)


def test_bench_simulation(benchmark, workload):
    """Simulating one hyper-period slice of the partitioned system."""
    _, taskset, platform = workload
    result = DpcpPEpTest().test(taskset, platform)
    if not result.schedulable:
        pytest.skip("reference workload not schedulable; simulation bench skipped")
    horizon = 2 * max(task.period for task in taskset)

    def simulate():
        simulator = DpcpPSimulator(result.partition)
        simulator.release_periodic_jobs(horizon)
        return simulator.run()

    benchmark.pedantic(simulate, rounds=3, iterations=1)
